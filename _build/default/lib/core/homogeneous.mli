(** The homogeneous optimal planner of Chouhan, Dail, Caron, Vivien
    (IJHPCA 2006) — the paper's [10] and the reference column of Table 4.

    On a homogeneous cluster the optimal deployment is a complete spanning
    d-ary tree for the best degree [d]; this module searches every degree,
    builds the {!Baselines.dary} tree and evaluates it with Eq. 16. *)

open Adept_platform
open Adept_hierarchy

type result = {
  tree : Tree.t;
  degree : int;
      (** Maximum degree of the winning tree (the realised degree — the
          frontier fix-up can widen a tree beyond its search parameter). *)
  predicted_rho : float;
  per_degree : (int * float) list;  (** rho for every search degree tried. *)
}

val plan :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (result, string) Stdlib.result
(** Search degrees 1 .. n-1.  With a demand, the smallest-resource tree
    meeting it wins; otherwise the maximum-rho tree (ties: fewer nodes,
    then smaller degree).  Intended for homogeneous-compute platforms; on
    heterogeneous input it still runs (nodes sorted strongest-first) but
    optimality claims no longer hold — callers can check
    [Platform.is_homogeneous_compute]. *)
