open Adept_platform
open Adept_hierarchy

let default_max_nodes = 8

(* All (subset, complement) splits of a list, 2^n of them. *)
let rec splits = function
  | [] -> Seq.return ([], [])
  | x :: rest ->
      Seq.concat_map
        (fun (inside, outside) ->
          List.to_seq [ (x :: inside, outside); (inside, x :: outside) ])
        (splits rest)

(* Unordered partitions into non-empty groups: the first element anchors
   its group, removing permutation duplicates. *)
let rec partitions = function
  | [] -> Seq.return []
  | x :: rest ->
      Seq.concat_map
        (fun (with_x, others) ->
          Seq.map (fun parts -> (x :: with_x) :: parts) (partitions others))
        (splits rest)

let rec seq_product = function
  | [] -> Seq.return []
  | s :: rest -> Seq.concat_map (fun x -> Seq.map (fun xs -> x :: xs) (seq_product rest)) s

let remove_one items =
  (* each element paired with the list without it *)
  let rec go before = function
    | [] -> Seq.empty
    | x :: after -> Seq.cons (x, List.rev_append before after) (fun () -> go (x :: before) after ())
  in
  go [] items

(* Valid subtrees spanning exactly [group].  Non-root agents need >= 2
   children, so no subtree exists for groups of size 2 when the group root
   must be an agent... except the size-1 server case. *)
let rec subtrees group =
  match group with
  | [] -> Seq.empty
  | [ x ] -> Seq.return (Tree.server x)
  | _ ->
      Seq.concat_map
        (fun (root, rest) ->
          partitions rest
          |> Seq.filter (fun parts -> List.length parts >= 2)
          |> Seq.concat_map (fun parts ->
                 Seq.map (Tree.agent root) (seq_product (List.map subtrees parts))))
        (remove_one group)

let enumerate nodes =
  match nodes with
  | [] | [ _ ] -> Seq.empty
  | _ ->
      Seq.concat_map
        (fun (root, rest) ->
          partitions rest
          |> Seq.filter (fun parts -> parts <> [])
          |> Seq.concat_map (fun parts ->
                 Seq.map (Tree.agent root) (seq_product (List.map subtrees parts))))
        (remove_one nodes)

let enumerate_subsets nodes =
  splits nodes
  |> Seq.concat_map (fun (subset, _) -> enumerate subset)

let count nodes = Seq.fold_left (fun acc _ -> acc + 1) 0 (enumerate_subsets nodes)

let optimal ?(max_nodes = default_max_nodes) params ~platform ~wapp () =
  let n = Platform.size platform in
  if n > max_nodes then
    Error (Printf.sprintf "exhaustive: %d nodes exceed the %d-node guard" n max_nodes)
  else if n < 2 then Error "exhaustive: need at least two nodes"
  else
    match Link.uniform_bandwidth (Platform.link platform) with
    | None -> Error "exhaustive: the model requires homogeneous connectivity"
    | Some bandwidth ->
        let best =
          Seq.fold_left
            (fun acc tree ->
              let rho = Evaluate.rho params ~bandwidth ~wapp tree in
              match acc with
              | Some (_, brho) when brho >= rho -> acc
              | Some _ | None -> Some (tree, rho))
            None
            (enumerate_subsets (Platform.nodes platform))
        in
        (match best with
        | None -> Error "exhaustive: no valid hierarchy exists"
        | Some result -> Ok result)
