(** Reference deployments the paper compares against (Section 5.3), plus a
    random generator for property tests.

    All constructors take the candidate nodes in priority order (strongest
    first is the sensible call, e.g. [Platform.sorted_by_power_desc]) and
    use a prefix of them. *)

open Adept_platform
open Adept_hierarchy

val star : Node.t list -> (Tree.t, string) result
(** "One node acts as an agent and all the rest are directly connected to
    the agent node."  Fails with fewer than two nodes. *)

val star_with : agent:Node.t -> servers:Node.t list -> (Tree.t, string) result
(** Star with an explicit agent and server set. *)

val balanced : agents:int -> Node.t list -> (Tree.t, string) result
(** The paper's balanced graph: one top agent connected to [agents]
    middle agents, the remaining nodes distributed as evenly as possible
    as servers beneath them (the paper's instance: 14 agents of 14 servers
    with one agent of 3).  Fails unless every middle agent can receive at
    least two servers ([n >= 1 + agents + 2*agents]) and [agents >= 1]. *)

val dary : degree:int -> Node.t list -> (Tree.t, string) result
(** Complete spanning d-ary tree (the optimal shape on homogeneous
    clusters per Chouhan et al. 2006): heap-ordered BFS tree where
    internal nodes are agents with [degree] children and leaves are
    servers.  [degree = 1] degenerates to one agent and one server.
    Non-root agents left with a single child by the rounding at the
    frontier are demoted to servers (their child re-attached to the
    grandparent), so the result always validates. *)

val random : rng:Adept_util.Rng.t -> Node.t list -> (Tree.t, string) result
(** A uniformly-shaped valid hierarchy over a random non-empty subset of
    the nodes; for property tests. *)
