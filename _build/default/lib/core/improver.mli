(** Iterative deployment improvement — the approach of the authors' prior
    work (the paper's refs [6]/[7]): "in each iteration, mathematical
    models are used to analyze the existing deployment, identify the
    primary bottleneck, and remove the bottleneck by adding resources in
    the appropriate area of the system".

    The paper positions Algorithm 1 against this: the improver needs a
    predefined deployment as input and only climbs locally, while the
    heuristic plans from scratch.  Implementing both makes that comparison
    runnable (the [ablation-improver] experiment). *)

open Adept_platform
open Adept_hierarchy

type bottleneck =
  | Agent_bottleneck of Node.id  (** The Eq. 14 limiting agent. *)
  | Server_prediction_bottleneck of Node.id
  | Service_bottleneck  (** Eq. 15 limits: add servers. *)

type action =
  | Added_server of Node.id * Node.id  (** (server, under agent). *)
  | Split_agent of Node.id * Node.id
      (** (overloaded agent, new agent that took half its children). *)
  | Removed_server of Node.id  (** Weak predictor removed. *)

type step = {
  bottleneck : bottleneck;
  action : action;
  rho_before : float;
  rho_after : float;
}

type result = {
  tree : Tree.t;
  predicted_rho : float;
  steps : step list;  (** In execution order. *)
  converged : bool;  (** False when [max_iterations] stopped the climb. *)
}

val improve :
  ?max_iterations:int ->
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  Tree.t ->
  (result, string) Stdlib.result
(** Iteratively remove the primary bottleneck of the given deployment:

    - service-limited: attach the strongest unused node as a server under
      the agent with the most Eq. 14 slack;
    - agent-limited: split the limiting agent by promoting an unused node
      to a sibling agent and moving half the children to it (for a root
      bottleneck, the new agent becomes a child of the root);
    - prediction-limited: drop the offending server.

    Each step must strictly improve Eq. 16 rho or the climb stops (local
    optimum).  The input tree must validate against the platform.
    Default [max_iterations] is the platform size. *)
