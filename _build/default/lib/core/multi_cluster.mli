(** Deployment planning across clusters with heterogeneous connectivity —
    the paper's closing future-work item, built on {!Evaluate.rho_hetero}.

    The Eq. 14–16 machinery (and therefore {!Heuristic.plan}) assumes a
    single bandwidth; on a multi-site platform this planner composes
    single-site plans instead:

    - {e single-site}: run the heuristic inside each cluster alone and keep
      the best (ignoring the other sites entirely);
    - {e federated}: for each choice of master site, plan every cluster
      separately and attach the other clusters' roots as children of the
      master's root, paying WAN costs on those links.

    Every candidate is scored with the generalised model and the best one
    returned — slow WANs make single-site plans win, fast WANs make
    federation win (the [ablation-wan] experiment sweeps this). *)

open Adept_platform
open Adept_hierarchy

type arrangement =
  | Single_site of string  (** Winning cluster name. *)
  | Federated of string  (** Master-root cluster name. *)

type result = {
  tree : Tree.t;
  predicted_rho : float;  (** {!Evaluate.rho_hetero} of [tree]. *)
  arrangement : arrangement;
  candidates : (string * float) list;
      (** Every arrangement considered with its score, e.g.
          [("single:lyon", 410.2); ("federated:orsay", 501.7)]. *)
}

val plan :
  Adept_model.Params.t ->
  platform:Platform.t ->
  wapp:float ->
  demand:Adept_model.Demand.t ->
  (result, string) Stdlib.result
(** Plan across the platform's clusters.  Works on single-cluster
    platforms too (degenerates to the heuristic).  Errors when any
    cluster is too small to host even a degenerate deployment and no
    other candidate exists.  The returned tree validates against the
    platform. *)

val sub_platform : Platform.t -> cluster:string -> (Platform.t * Node.t array) option
(** The nodes of one cluster re-indexed densely as their own platform,
    plus the mapping from new ids back to the original nodes; [None] if
    the cluster has no nodes.  Exposed for tests. *)
