open Adept_platform
module Throughput = Adept_model.Throughput

let agent params ~bandwidth ~node ~children =
  Throughput.agent_sched params ~bandwidth ~power:(Node.power node) ~degree:children

let server params ~bandwidth ~node =
  Throughput.server_sched params ~bandwidth ~power:(Node.power node)

let sort_nodes params ~bandwidth nodes =
  match nodes with
  | [] -> []
  | _ ->
      let fanout = max 1 (List.length nodes - 1) in
      let keyed =
        List.map (fun n -> (agent params ~bandwidth ~node:n ~children:fanout, n)) nodes
      in
      let compare (ka, a) (kb, b) =
        match Float.compare kb ka with
        | 0 -> Node.compare_by_power_desc a b
        | c -> c
      in
      List.map snd (List.sort compare keyed)

let supported_children params ~bandwidth ~node ~floor ~max_children =
  (* agent sched power is strictly decreasing in the degree, so a linear
     scan from 1 is exact; max_children is at most n and keeps this cheap. *)
  let rec go d =
    if d > max_children then max_children
    else if agent params ~bandwidth ~node ~children:d < floor then d - 1
    else go (d + 1)
  in
  if max_children < 1 then 0 else go 1
