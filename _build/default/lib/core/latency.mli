(** Response-time estimation under load.

    The paper's model predicts steady-state {e throughput} only; this
    companion estimates the {e latency} a request experiences at a given
    arrival rate, so a deployment can be checked against response-time
    targets as well as rates (and so the simulator's latency curves have
    an analytical reference).

    The estimate combines:
    - the zero-load path time: every message and computation a request
      traverses, including the serial fan-out at each agent (children are
      contacted one port-transmission after another, but their subtrees
      work in parallel);
    - an M/D/1 queueing wait at every resource, [W = u*s / (2*(1-u))] for
      a resource with per-request occupation [s] and utilisation
      [u = rate*s] — arrivals are Poisson-like, service nearly
      deterministic;
    - the service phase on the selected server, with requests split
      proportionally to server power (Eqs. 6–9).

    Agents are occupied by every scheduling message and computation
    (Eq. 14's denominator); servers by predictions plus their share of
    services.  The estimate is heuristic — hierarchies overlap work in
    ways no product-form model captures — but tracks the simulator within
    tens of percent below saturation (see the tests), and correctly
    diverges at it. *)

open Adept_hierarchy

type estimate = {
  rate : float;  (** The arrival rate the estimate is for, req/s. *)
  sched_latency : float;  (** Scheduling phase, seconds. *)
  service_latency : float;  (** Service phase (wait + execution), seconds. *)
  total : float;
  max_utilization : float;  (** Busiest resource's [u]. *)
  stable : bool;  (** All utilisations < 1. *)
}

val estimate :
  Adept_model.Params.t ->
  bandwidth:float ->
  wapp:float ->
  rate:float ->
  Tree.t ->
  estimate
(** @raise Invalid_argument on non-positive rate/wapp/bandwidth or a tree
    with no servers.  When [stable] is false the latency fields are
    [infinity]. *)

val sweep :
  Adept_model.Params.t ->
  bandwidth:float ->
  wapp:float ->
  rates:float list ->
  Tree.t ->
  estimate list
(** One estimate per rate. *)

val pp : Format.formatter -> estimate -> unit
