lib/core/improver.ml: Adept_hierarchy Adept_model Adept_platform Evaluate Hashtbl List Node Option Platform Service_power String Tree Validate
