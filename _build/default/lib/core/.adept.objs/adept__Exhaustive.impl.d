lib/core/exhaustive.ml: Adept_hierarchy Adept_platform Evaluate Link List Platform Printf Seq Tree
