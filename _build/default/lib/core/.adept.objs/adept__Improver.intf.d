lib/core/improver.mli: Adept_hierarchy Adept_model Adept_platform Node Platform Stdlib Tree
