lib/core/evaluate.mli: Adept_hierarchy Adept_model Adept_platform Platform Tree
