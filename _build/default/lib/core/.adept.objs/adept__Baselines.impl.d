lib/core/baselines.ml: Adept_hierarchy Adept_util Array List Printf Tree
