lib/core/baselines.mli: Adept_hierarchy Adept_platform Adept_util Node Tree
