lib/core/heuristic.ml: Adept_hierarchy Adept_model Adept_platform Array Evaluate Float Link List Node Platform Result Sched_power Service_power Tree
