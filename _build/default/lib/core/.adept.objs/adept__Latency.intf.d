lib/core/latency.mli: Adept_hierarchy Adept_model Format Tree
