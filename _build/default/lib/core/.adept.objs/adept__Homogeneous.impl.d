lib/core/homogeneous.ml: Adept_hierarchy Adept_model Adept_platform Baselines Evaluate Float Link List Metrics Platform Tree
