lib/core/exhaustive.mli: Adept_hierarchy Adept_model Adept_platform Node Platform Seq Stdlib Tree
