lib/core/sched_power.mli: Adept_model Adept_platform Node
