lib/core/multi_cluster.mli: Adept_hierarchy Adept_model Adept_platform Node Platform Stdlib Tree
