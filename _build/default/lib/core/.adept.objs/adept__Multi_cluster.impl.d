lib/core/multi_cluster.ml: Adept_hierarchy Adept_model Adept_platform Array Evaluate Heuristic Link List Node Platform String Tree Validate
