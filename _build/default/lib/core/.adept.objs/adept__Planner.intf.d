lib/core/planner.mli: Adept_hierarchy Adept_model Adept_platform Format Platform Stdlib Tree
