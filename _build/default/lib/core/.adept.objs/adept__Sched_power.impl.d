lib/core/sched_power.ml: Adept_model Adept_platform Float List Node
