lib/core/latency.ml: Adept_hierarchy Adept_model Adept_platform Float Format List Node Tree
