lib/core/service_power.ml: Adept_model Adept_platform List Node
