lib/core/evaluate.ml: Adept_hierarchy Adept_model Adept_platform Float Format List Metrics Node Platform Printf Tree
