lib/core/service_power.mli: Adept_model Adept_platform Node
