lib/core/heuristic.mli: Adept_hierarchy Adept_model Adept_platform Platform Stdlib Tree
