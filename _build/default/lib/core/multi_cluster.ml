open Adept_platform
open Adept_hierarchy
module Demand = Adept_model.Demand

type arrangement = Single_site of string | Federated of string

type result = {
  tree : Tree.t;
  predicted_rho : float;
  arrangement : arrangement;
  candidates : (string * float) list;
}

let sub_platform platform ~cluster =
  let members =
    List.filter (fun n -> Node.cluster n = cluster) (Platform.nodes platform)
  in
  match members with
  | [] -> None
  | representative :: _ ->
      let mapping = Array.of_list members in
      let renumbered =
        List.mapi
          (fun i n ->
            Node.make ~id:i ~name:(Node.name n) ~power:(Node.power n) ~cluster ())
          members
      in
      let intra =
        Platform.bandwidth platform (Node.id representative) (Node.id representative)
      in
      let link =
        Link.homogeneous ~bandwidth:intra
          ~latency:(Link.latency (Platform.link platform))
          ()
      in
      Some (Platform.create ~link renumbered, mapping)

(* Map a tree planned on a renumbered sub-platform back onto the original
   platform's nodes. *)
let rec retranslate mapping = function
  | Tree.Server n -> Tree.server mapping.(Node.id n)
  | Tree.Agent (n, children) ->
      Tree.agent mapping.(Node.id n) (List.map (retranslate mapping) children)

let plan params ~platform ~wapp ~demand =
  let clusters =
    List.sort_uniq String.compare
      (List.map Node.cluster (Platform.nodes platform))
  in
  (* One unbounded heuristic plan per cluster; clusters of a single node
     cannot host a deployment alone but can still lend their node... they
     are simply skipped (the heuristic needs agent + server). *)
  let cluster_plans =
    List.filter_map
      (fun cluster ->
        match sub_platform platform ~cluster with
        | None -> None
        | Some (sub, mapping) -> (
            if Platform.size sub < 2 then None
            else
              match
                Heuristic.plan_tree params ~platform:sub ~wapp
                  ~demand:Demand.unbounded
              with
              | Error _ -> None
              | Ok tree -> Some (cluster, retranslate mapping tree)))
      clusters
  in
  if cluster_plans = [] then
    Error "multi_cluster: no cluster can host even a degenerate deployment"
  else begin
    let score tree = Evaluate.rho_hetero params ~platform ~wapp tree in
    let singles =
      List.map
        (fun (cluster, tree) -> (Single_site cluster, tree, score tree))
        cluster_plans
    in
    let federations =
      if List.length cluster_plans < 2 then []
      else
        List.map
          (fun (master, master_tree) ->
            let others =
              List.filter (fun (c, _) -> c <> master) cluster_plans
            in
            let tree =
              match master_tree with
              | Tree.Server _ ->
                  (* cannot happen: heuristic roots are agents *)
                  master_tree
              | Tree.Agent (root, children) ->
                  Tree.normalize
                    (Tree.agent root (children @ List.map snd others))
            in
            (Federated master, tree, score tree))
          cluster_plans
    in
    let all = singles @ federations in
    let name = function
      | Single_site c -> "single:" ^ c
      | Federated c -> "federated:" ^ c
    in
    let candidates = List.map (fun (a, _, rho) -> (name a, rho)) all in
    let meeting =
      match demand with
      | Demand.Unbounded -> []
      | Demand.Rate r -> List.filter (fun (_, _, rho) -> rho >= r *. (1.0 -. 1e-9)) all
    in
    let pick_best l =
      List.fold_left
        (fun acc ((_, tree, rho) as c) ->
          match acc with
          | Some (_, btree, brho) ->
              if
                rho > brho
                || (rho = brho && Tree.size tree < Tree.size btree)
              then Some c
              else acc
          | None -> Some c)
        None l
    in
    let pick_cheapest l =
      List.fold_left
        (fun acc ((_, tree, _) as c) ->
          match acc with
          | Some (_, btree, _) when Tree.size btree <= Tree.size tree -> acc
          | Some _ | None -> Some c)
        None l
    in
    let chosen =
      match meeting with [] -> pick_best all | _ :: _ -> pick_cheapest meeting
    in
    match chosen with
    | None -> Error "multi_cluster: empty candidate set"
    | Some (arrangement, tree, predicted_rho) ->
        (match Validate.check ~platform tree with
        | Error errs ->
            Error
              ("multi_cluster: invalid composed hierarchy: "
              ^ String.concat "; " (List.map Validate.error_to_string errs))
        | Ok () -> Ok { tree; predicted_rho; arrangement; candidates })
  end
