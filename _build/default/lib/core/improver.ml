open Adept_platform
open Adept_hierarchy
module Throughput = Adept_model.Throughput

type bottleneck =
  | Agent_bottleneck of Node.id
  | Server_prediction_bottleneck of Node.id
  | Service_bottleneck

type action =
  | Added_server of Node.id * Node.id
  | Split_agent of Node.id * Node.id
  | Removed_server of Node.id

type step = {
  bottleneck : bottleneck;
  action : action;
  rho_before : float;
  rho_after : float;
}

type result = {
  tree : Tree.t;
  predicted_rho : float;
  steps : step list;
  converged : bool;
}

let unused_strongest platform tree =
  let used = Hashtbl.create 64 in
  List.iter (fun n -> Hashtbl.replace used (Node.id n) ()) (Tree.nodes tree);
  List.filter
    (fun n -> not (Hashtbl.mem used (Node.id n)))
    (Platform.sorted_by_power_desc platform)

(* The minimum term of Eq. 16, identified rather than just evaluated. *)
let find_bottleneck params ~bandwidth ~wapp tree =
  let agent_terms =
    List.map
      (fun (node, degree) ->
        ( Node.id node,
          Throughput.agent_sched params ~bandwidth ~power:(Node.power node) ~degree ))
      (Tree.agents_with_degree tree)
  in
  let server_terms =
    List.map
      (fun node ->
        (Node.id node, Throughput.server_sched params ~bandwidth ~power:(Node.power node)))
      (Tree.servers tree)
  in
  let service =
    Service_power.of_servers params ~bandwidth ~wapp (Tree.servers tree)
  in
  let min_of terms =
    List.fold_left
      (fun acc (id, v) ->
        match acc with Some (_, bv) when bv <= v -> acc | _ -> Some (id, v))
      None terms
  in
  let agent_min = min_of agent_terms and server_min = min_of server_terms in
  match (agent_min, server_min) with
  | Some (aid, av), Some (sid, sv) ->
      if service <= av && service <= sv then Service_bottleneck
      else if av <= sv then Agent_bottleneck aid
      else Server_prediction_bottleneck sid
  | _ -> Service_bottleneck

let rec add_server_under tree ~agent_id ~server =
  match tree with
  | Tree.Server _ -> tree
  | Tree.Agent (n, children) ->
      if Node.id n = agent_id then Tree.agent n (children @ [ Tree.server server ])
      else
        Tree.agent n (List.map (fun c -> add_server_under c ~agent_id ~server) children)

(* Move the tail half (at least two) of [agent_id]'s children under a new
   sibling agent; for the root, the new agent becomes one of its children. *)
let split tree ~agent_id ~new_agent =
  let split_children children =
    let d = List.length children in
    let moved_count = max 2 (d / 2) in
    if d < 2 || moved_count >= d + 1 then None
    else begin
      let kept_count = d - moved_count in
      let kept = List.filteri (fun i _ -> i < kept_count) children in
      let moved = List.filteri (fun i _ -> i >= kept_count) children in
      Some (kept, moved)
    end
  in
  match tree with
  | Tree.Agent (root, children) when Node.id root = agent_id -> (
      (* root split: new agent becomes a child of the root *)
      match split_children children with
      | Some (kept, moved) when List.length moved >= 2 ->
          Some (Tree.agent root (kept @ [ Tree.agent new_agent moved ]))
      | Some _ | None -> None)
  | _ ->
      let rec go tree =
        match tree with
        | Tree.Server _ -> (tree, false)
        | Tree.Agent (p, children) ->
            let target =
              List.exists
                (fun c ->
                  match c with
                  | Tree.Agent (n, _) -> Node.id n = agent_id
                  | Tree.Server _ -> false)
                children
            in
            if not target then begin
              let rewritten = List.map go children in
              (Tree.agent p (List.map fst rewritten), List.exists snd rewritten)
            end
            else begin
              let rewritten =
                List.concat_map
                  (fun c ->
                    match c with
                    | Tree.Agent (n, grandchildren) when Node.id n = agent_id -> (
                        match split_children grandchildren with
                        | Some (kept, moved)
                          when List.length kept >= 2 && List.length moved >= 2 ->
                            [ Tree.agent n kept; Tree.agent new_agent moved ]
                        | Some _ | None -> [ c ])
                    | c -> [ c ])
                  children
              in
              let changed = List.length rewritten > List.length children in
              (Tree.agent p rewritten, changed)
            end
      in
      let tree', changed = go tree in
      if changed then Some tree' else None

let remove_server tree ~server_id =
  let rec go tree =
    match tree with
    | Tree.Server _ -> tree
    | Tree.Agent (n, children) ->
        let children =
          List.filter
            (fun c ->
              match c with
              | Tree.Server s -> Node.id s <> server_id
              | Tree.Agent _ -> true)
            children
        in
        Tree.agent n (List.map go children)
  in
  let tree' = go tree in
  if Tree.size tree' < Tree.size tree && Validate.is_valid tree' then Some tree'
  else None

let improve ?max_iterations params ~platform ~wapp tree =
  match Validate.check ~platform tree with
  | Error errs ->
      Error
        ("improver: invalid input deployment: "
        ^ String.concat "; " (List.map Validate.error_to_string errs))
  | Ok () ->
      let bandwidth = Platform.uniform_bandwidth platform in
      let limit = Option.value ~default:(Platform.size platform) max_iterations in
      let rho tree = Evaluate.rho params ~bandwidth ~wapp tree in
      let rec climb tree steps iterations =
        if iterations >= limit then
          { tree; predicted_rho = rho tree; steps = List.rev steps; converged = false }
        else begin
          let rho_before = rho tree in
          let bottleneck = find_bottleneck params ~bandwidth ~wapp tree in
          let candidate =
            match bottleneck with
            | Service_bottleneck -> (
                match unused_strongest platform tree with
                | [] -> None
                | server :: _ ->
                    (* host under the agent with the most Eq. 14 slack *)
                    let best_agent =
                      List.fold_left
                        (fun acc (node, degree) ->
                          let slack =
                            Throughput.agent_sched params ~bandwidth
                              ~power:(Node.power node) ~degree:(degree + 1)
                          in
                          match acc with
                          | Some (_, best) when best >= slack -> acc
                          | Some _ | None -> Some (Node.id node, slack))
                        None
                        (Tree.agents_with_degree tree)
                    in
                    Option.map
                      (fun (agent_id, _) ->
                        ( add_server_under tree ~agent_id ~server,
                          Added_server (Node.id server, agent_id) ))
                      best_agent)
            | Agent_bottleneck agent_id -> (
                match unused_strongest platform tree with
                | [] -> None
                | new_agent :: _ ->
                    Option.map
                      (fun tree' -> (tree', Split_agent (agent_id, Node.id new_agent)))
                      (split tree ~agent_id ~new_agent))
            | Server_prediction_bottleneck server_id ->
                Option.map
                  (fun tree' -> (tree', Removed_server server_id))
                  (remove_server tree ~server_id)
          in
          match candidate with
          | None ->
              { tree; predicted_rho = rho_before; steps = List.rev steps; converged = true }
          | Some (tree', action) ->
              let rho_after = rho tree' in
              if rho_after > rho_before *. (1.0 +. 1e-12) && Validate.is_valid tree'
              then
                climb tree'
                  ({ bottleneck; action; rho_before; rho_after } :: steps)
                  (iterations + 1)
              else
                {
                  tree;
                  predicted_rho = rho_before;
                  steps = List.rev steps;
                  converged = true;
                }
        end
      in
      Ok (climb tree [] 0)
