lib/godiet/plan.mli: Adept_hierarchy Adept_platform Format Node Tree
