lib/godiet/writer.ml: Adept_hierarchy Adept_platform Buffer Fun Link List Node Option Platform Printf Result String Xml
