lib/godiet/writer.mli: Adept_hierarchy Adept_platform Platform Tree
