lib/godiet/launcher.ml: Adept_hierarchy Adept_platform Adept_sim Adept_util List Plan String
