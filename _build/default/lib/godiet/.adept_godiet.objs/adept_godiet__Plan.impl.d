lib/godiet/plan.ml: Adept_hierarchy Adept_platform Format List Option Printf String Tree Validate
