lib/godiet/launcher.mli: Adept_model Adept_platform Adept_sim Adept_util Plan Platform
