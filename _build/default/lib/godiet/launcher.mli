(** The deployment tool: takes a plan (or its XML) and brings the platform
    up — here, instantiated inside the simulator, the way GoDIET launched
    DIET elements over ssh on Grid'5000.

    Launching follows the plan's element order (parents before children)
    with a configurable per-element launch delay, so a deployment's time
    to readiness scales with its size, as it did in practice. *)

open Adept_platform

type launched = {
  middleware : Adept_sim.Middleware.t;
  ready_at : float;  (** Simulated time when the whole hierarchy is up. *)
  launched_elements : int;
}

val launch :
  ?element_delay:float ->
  ?trace:Adept_sim.Trace.t ->
  ?selection:Adept_sim.Middleware.selection ->
  engine:Adept_sim.Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  Plan.t ->
  launched
(** Deploy the plan's hierarchy on the simulator.  [element_delay]
    (default 0.5 simulated seconds, an ssh-and-start cost per element) is
    consumed sequentially before [ready_at]. *)

val launch_xml :
  ?element_delay:float ->
  ?trace:Adept_sim.Trace.t ->
  ?selection:Adept_sim.Middleware.selection ->
  engine:Adept_sim.Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  string ->
  (launched, string) result
(** Parse a hierarchy XML (resolving hosts against the platform), build
    the plan and launch it. *)

(** {2 Staged launch with failures}

    Real launches over ssh fail — nodes are down, reservations expire.
    GoDIET launched elements parents-first and a failed element meant
    either retrying or deploying without it.  [launch_staged] models
    that: each element launch takes [element_delay] simulated seconds and
    fails with probability [failure_probability]; failures retry up to
    [max_retries] times; a server that never comes up is dropped from the
    hierarchy (if it remains valid), while a lost agent aborts the
    deployment — its whole subtree would be orphaned. *)

type launch_policy = {
  element_delay : float;  (** Seconds per launch attempt. *)
  failure_probability : float;  (** Per attempt, in [0, 1). *)
  max_retries : int;  (** Additional attempts after the first. *)
}

val default_policy : launch_policy
(** 0.5 s per attempt, no failures, 2 retries. *)

type staged_outcome = {
  deployment : launched option;  (** [None] when the launch aborted. *)
  attempts : int;  (** Total launch attempts across all elements. *)
  dropped_servers : string list;  (** Element names deployed without. *)
  aborted_on : string option;  (** Agent element that killed the launch. *)
}

val launch_staged :
  ?policy:launch_policy ->
  ?trace:Adept_sim.Trace.t ->
  ?selection:Adept_sim.Middleware.selection ->
  rng:Adept_util.Rng.t ->
  engine:Adept_sim.Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  Plan.t ->
  (staged_outcome, string) result
(** [Error] only on an invalid policy or when dropping failed servers
    leaves no valid hierarchy; agent failures are reported through
    [aborted_on], not [Error]. *)
