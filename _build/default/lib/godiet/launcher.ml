type launched = {
  middleware : Adept_sim.Middleware.t;
  ready_at : float;
  launched_elements : int;
}

let launch ?(element_delay = 0.5) ?trace ?selection ~engine ~params ~platform
    (plan : Plan.t) =
  if element_delay < 0.0 then invalid_arg "Launcher.launch: negative element delay";
  let elements = Plan.launch_order plan in
  let count = List.length elements in
  let middleware =
    Adept_sim.Middleware.deploy ?trace ?selection ~engine ~params ~platform plan.Plan.tree
  in
  let ready_at =
    Adept_sim.Engine.now engine +. (element_delay *. float_of_int count)
  in
  { middleware; ready_at; launched_elements = count }

type launch_policy = {
  element_delay : float;
  failure_probability : float;
  max_retries : int;
}

let default_policy = { element_delay = 0.5; failure_probability = 0.0; max_retries = 2 }

type staged_outcome = {
  deployment : launched option;
  attempts : int;
  dropped_servers : string list;
  aborted_on : string option;
}

let remove_server tree node_id =
  let rec go tree =
    match tree with
    | Adept_hierarchy.Tree.Server _ -> tree
    | Adept_hierarchy.Tree.Agent (n, children) ->
        let children =
          List.filter
            (fun c ->
              match c with
              | Adept_hierarchy.Tree.Server s -> Adept_platform.Node.id s <> node_id
              | Adept_hierarchy.Tree.Agent _ -> true)
            children
        in
        Adept_hierarchy.Tree.agent n (List.map go children)
  in
  go tree

let launch_staged ?(policy = default_policy) ?trace ?selection ~rng ~engine ~params
    ~platform (plan : Plan.t) =
  if policy.element_delay < 0.0 then Error "launch_staged: negative element delay"
  else if policy.failure_probability < 0.0 || policy.failure_probability >= 1.0 then
    Error "launch_staged: failure probability must be in [0, 1)"
  else if policy.max_retries < 0 then Error "launch_staged: negative retry count"
  else begin
    let attempts = ref 0 in
    let clock = ref (Adept_sim.Engine.now engine) in
    (* returns true when the element eventually came up *)
    let try_launch () =
      let rec go tries_left =
        incr attempts;
        clock := !clock +. policy.element_delay;
        let failed =
          policy.failure_probability > 0.0
          && Adept_util.Rng.float rng 1.0 < policy.failure_probability
        in
        if not failed then true else if tries_left > 0 then go (tries_left - 1) else false
      in
      go policy.max_retries
    in
    let dropped = ref [] in
    let aborted = ref None in
    let tree = ref plan.Plan.tree in
    List.iter
      (fun (e : Plan.element) ->
        if !aborted = None then
          if try_launch () then ()
          else
            match e.Plan.kind with
            | Plan.Server ->
                dropped := e.Plan.element_name :: !dropped;
                tree := remove_server !tree (Adept_platform.Node.id e.Plan.host)
            | Plan.Master_agent | Plan.Agent ->
                aborted := Some e.Plan.element_name)
      (Plan.launch_order plan);
    match !aborted with
    | Some name ->
        Ok
          {
            deployment = None;
            attempts = !attempts;
            dropped_servers = List.rev !dropped;
            aborted_on = Some name;
          }
    | None -> (
        (* an agent left with a single child by a dropped sibling is
           restarted as a server (Tree.normalize) *)
        tree := Adept_hierarchy.Tree.normalize !tree;
        match Adept_hierarchy.Validate.check ~platform !tree with
        | Error errs ->
            Error
              ("launch_staged: too many servers lost: "
              ^ String.concat "; "
                  (List.map Adept_hierarchy.Validate.error_to_string errs))
        | Ok () ->
            let middleware =
              Adept_sim.Middleware.deploy ?trace ?selection ~engine ~params ~platform
                !tree
            in
            Ok
              {
                deployment =
                  Some
                    {
                      middleware;
                      ready_at = !clock;
                      launched_elements =
                        List.length (Plan.launch_order plan) - List.length !dropped;
                    };
                attempts = !attempts;
                dropped_servers = List.rev !dropped;
                aborted_on = None;
              })
  end

let launch_xml ?element_delay ?trace ?selection ~engine ~params ~platform xml =
  match Adept_hierarchy.Xml.of_string_on platform xml with
  | Error _ as e -> e
  | Ok tree -> (
      match Plan.of_tree tree with
      | Error _ as e -> e
      | Ok plan ->
          Ok (launch ?element_delay ?trace ?selection ~engine ~params ~platform plan))
