open Adept_hierarchy

type element_kind = Master_agent | Agent | Server

type element = {
  kind : element_kind;
  element_name : string;
  host : Adept_platform.Node.t;
  parent_name : string option;
}

type t = { tree : Tree.t; elements : element list }

let of_tree tree =
  match Validate.check tree with
  | Error errs ->
      Error
        ("plan: invalid hierarchy: "
        ^ String.concat "; " (List.map Validate.error_to_string errs))
  | Ok () ->
      let next_agent = ref 0 and next_server = ref 0 in
      let rec walk parent_name acc node =
        match node with
        | Tree.Server host ->
            incr next_server;
            let e =
              {
                kind = Server;
                element_name = Printf.sprintf "SeD-%d" !next_server;
                host;
                parent_name;
              }
            in
            e :: acc
        | Tree.Agent (host, children) ->
            let kind, element_name =
              if parent_name = None then (Master_agent, "MA")
              else begin
                incr next_agent;
                (Agent, Printf.sprintf "A-%d" !next_agent)
              end
            in
            let e = { kind; element_name; host; parent_name } in
            List.fold_left (walk (Some element_name)) (e :: acc) children
      in
      let elements = List.rev (walk None [] tree) in
      Ok { tree; elements }

let master t = List.hd t.elements

let agents t = List.filter (fun e -> e.kind <> Server) t.elements

let servers t = List.filter (fun e -> e.kind = Server) t.elements

let find t name = List.find_opt (fun e -> e.element_name = name) t.elements

let launch_order t = t.elements

let pp ppf t =
  List.iter
    (fun e ->
      let kind =
        match e.kind with Master_agent -> "MA " | Agent -> "A  " | Server -> "SeD"
      in
      Format.fprintf ppf "%s %-8s on %-12s parent=%s@." kind e.element_name
        (Adept_platform.Node.name e.host)
        (Option.value ~default:"-" e.parent_name))
    t.elements
