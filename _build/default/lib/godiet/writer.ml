open Adept_platform
open Adept_hierarchy

let document platform tree =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf "<godiet_deployment>\n";
  Buffer.add_string buf "  <resources>\n";
  List.iter
    (fun node ->
      Buffer.add_string buf
        (Printf.sprintf "    <compute_node name=\"%s\" power=\"%.17g\" cluster=\"%s\"/>\n"
           (Node.name node) (Node.power node) (Node.cluster node)))
    (Platform.nodes platform);
  let link = Platform.link platform in
  (match Link.uniform_bandwidth link with
  | Some b ->
      Buffer.add_string buf
        (Printf.sprintf "    <link bandwidth=\"%.17g\" latency=\"%.17g\"/>\n" b
           (Link.latency link))
  | None ->
      Buffer.add_string buf
        (Printf.sprintf "    <link bandwidth=\"heterogeneous\" latency=\"%.17g\"/>\n"
           (Link.latency link)));
  Buffer.add_string buf "  </resources>\n";
  (* Indent the hierarchy section by two spaces to nest it. *)
  String.split_on_char '\n' (Xml.to_string tree)
  |> List.iter (fun line ->
         if line <> "" then begin
           Buffer.add_string buf "  ";
           Buffer.add_string buf line;
           Buffer.add_char buf '\n'
         end);
  Buffer.add_string buf "</godiet_deployment>\n";
  Buffer.contents buf

let parse_document text =
  match
    (String.index_opt text '<', String.length text)
  with
  | None, _ -> Error "empty document"
  | Some _, _ -> (
      let open_tag = "<diet_hierarchy>" and close_tag = "</diet_hierarchy>" in
      let find_sub needle =
        let nlen = String.length needle and hlen = String.length text in
        let rec go i =
          if i + nlen > hlen then None
          else if String.sub text i nlen = needle then Some i
          else go (i + 1)
        in
        go 0
      in
      match (find_sub open_tag, find_sub close_tag) with
      | Some a, Some b when b > a ->
          let section = String.sub text a (b + String.length close_tag - a) in
          Xml.of_string section
      | _ -> Error "document has no <diet_hierarchy> section")

(* value of key="..." inside one tag's text *)
let attr tag key =
  let needle = key ^ "=\"" in
  let nlen = String.length needle and tlen = String.length tag in
  let rec find i =
    if i + nlen > tlen then None
    else if String.sub tag i nlen = needle then
      let start = i + nlen in
      match String.index_from_opt tag start '"' with
      | Some close -> Some (String.sub tag start (close - start))
      | None -> None
    else find (i + 1)
  in
  find 0

(* every "<name ... />" tag text in the document, in order *)
let self_closing_tags text name =
  let open_tag = "<" ^ name in
  let tlen = String.length text and olen = String.length open_tag in
  let rec go acc i =
    if i + olen > tlen then List.rev acc
    else if String.sub text i olen = open_tag then
      match String.index_from_opt text i '>' with
      | Some close -> go (String.sub text i (close - i) :: acc) (close + 1)
      | None -> List.rev acc
    else go acc (i + 1)
  in
  go [] 0

let ( let* ) = Result.bind

let parse_resources text =
  let nodes_tags = self_closing_tags text "compute_node" in
  if nodes_tags = [] then Error "document has no compute_node entries"
  else begin
    let* link =
      match self_closing_tags text "link" with
      | [ tag ] -> (
          match attr tag "bandwidth" with
          | None -> Error "link entry missing bandwidth"
          | Some "heterogeneous" ->
              Error
                "document was written from a heterogeneous-connectivity platform; \
                 the per-pair table is not serialised"
          | Some b -> (
              match float_of_string_opt b with
              | None -> Error (Printf.sprintf "invalid link bandwidth %S" b)
              | Some bandwidth -> (
                  let latency =
                    Option.bind (attr tag "latency") float_of_string_opt
                    |> Option.value ~default:0.0
                  in
                  try Ok (Link.homogeneous ~bandwidth ~latency ())
                  with Invalid_argument m -> Error m)))
      | [] -> Error "document has no link entry"
      | _ -> Error "document has several link entries"
    in
    let rec build acc id = function
      | [] -> Ok (List.rev acc)
      | tag :: rest -> (
          match (attr tag "name", Option.bind (attr tag "power") float_of_string_opt) with
          | Some name, Some power -> (
              let cluster = Option.value ~default:"default" (attr tag "cluster") in
              match Node.make ~id ~name ~power ~cluster () with
              | node -> build (node :: acc) (id + 1) rest
              | exception Invalid_argument m -> Error m)
          | _ -> Error (Printf.sprintf "malformed compute_node entry: %s" tag))
    in
    let* nodes = build [] 0 nodes_tags in
    try Ok (Platform.create ~link nodes) with Invalid_argument m -> Error m
  end

let load_deployment text =
  let* platform = parse_resources text in
  let* shape = parse_document text in
  let* tree = Xml.of_string_on platform (Xml.to_string shape) in
  Ok (platform, tree)

let save platform tree path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (document platform tree))
