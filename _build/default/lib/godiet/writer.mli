(** Full GoDIET-style XML documents: resources section (the platform) plus
    the hierarchy section (from {!Adept_hierarchy.Xml}), mirroring the
    input files GoDIET 2.0 consumed. *)

open Adept_platform
open Adept_hierarchy

val document : Platform.t -> Tree.t -> string
(** The complete deployment document:

    {v
    <godiet_deployment>
      <resources>
        <compute_node name="..." power="..." cluster="..."/>
        ...
        <link bandwidth="..." latency="..."/>
      </resources>
      <diet_hierarchy> ... </diet_hierarchy>
    </godiet_deployment>
    v} *)

val parse_document : string -> (Tree.t, string) result
(** Extract and parse the hierarchy section of a {!document}. *)

val parse_resources : string -> (Platform.t, string) result
(** Extract and parse the resources section of a {!document}: the
    [compute_node] entries (ids assigned in document order) and the
    homogeneous [link].  Documents written from heterogeneous-connectivity
    platforms are rejected — the per-pair table is not serialised. *)

val load_deployment : string -> (Platform.t * Tree.t, string) result
(** Restore a complete deployment from a {!document}: the platform from
    the resources section and the hierarchy resolved against it (original
    node ids, names and powers). *)

val save : Platform.t -> Tree.t -> string -> unit
