(** Deployment plans: the artefact a planner hands to the deployment tool.

    A plan binds a hierarchy to the platform it was computed for, with the
    element naming GoDIET needs (master agent / agents / servers get
    distinct names in the launch order). *)

open Adept_platform
open Adept_hierarchy

type element_kind = Master_agent | Agent | Server

type element = {
  kind : element_kind;
  element_name : string;  (** e.g. ["MA"], ["A-1"], ["SeD-3"]. *)
  host : Node.t;
  parent_name : string option;  (** [None] only for the master agent. *)
}

type t = private {
  tree : Tree.t;
  elements : element list;  (** Launch order: parents before children. *)
}

val of_tree : Tree.t -> (t, string) result
(** Name every element and order the launch sequence; fails if the
    hierarchy does not validate structurally. *)

val master : t -> element
val agents : t -> element list
(** Including the master agent. *)

val servers : t -> element list

val find : t -> string -> element option
(** Lookup by element name. *)

val launch_order : t -> element list
(** Parents strictly before children (preorder). *)

val pp : Format.formatter -> t -> unit
