lib/simulator/trace.mli: Format
