lib/simulator/engine.mli:
