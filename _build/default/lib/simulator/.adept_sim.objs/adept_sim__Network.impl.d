lib/simulator/network.ml: Engine Resource
