lib/simulator/engine.ml: Event_queue Float Option Printf
