lib/simulator/scenario.ml: Adept_hierarchy Adept_model Adept_platform Adept_util Adept_workload Engine Float List Middleware Node Platform Run_stats Trace Tree
