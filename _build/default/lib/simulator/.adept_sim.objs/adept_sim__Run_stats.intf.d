lib/simulator/run_stats.mli: Adept_platform Format Node
