lib/simulator/resource.ml: Float Format Printf
