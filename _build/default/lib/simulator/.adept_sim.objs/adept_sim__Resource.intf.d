lib/simulator/resource.mli: Format
