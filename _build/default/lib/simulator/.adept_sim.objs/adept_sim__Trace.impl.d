lib/simulator/trace.ml: Array Format List
