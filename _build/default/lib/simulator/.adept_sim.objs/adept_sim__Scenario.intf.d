lib/simulator/scenario.mli: Adept_hierarchy Adept_model Adept_platform Adept_workload Engine Middleware Node Platform Trace Tree
