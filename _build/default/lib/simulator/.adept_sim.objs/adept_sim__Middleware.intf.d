lib/simulator/middleware.mli: Adept_hierarchy Adept_model Adept_platform Adept_util Engine Node Platform Resource Trace
