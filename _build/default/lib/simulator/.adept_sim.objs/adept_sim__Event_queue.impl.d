lib/simulator/event_queue.ml: Array Float
