lib/simulator/event_queue.mli:
