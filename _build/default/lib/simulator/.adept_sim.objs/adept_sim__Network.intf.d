lib/simulator/network.mli: Engine Resource
