lib/simulator/middleware.ml: Adept_hierarchy Adept_model Adept_platform Adept_util Array Engine Float Hashtbl Link List Network Node Option Platform Printf Resource String Trace Tree Validate
