lib/simulator/run_stats.ml: Adept_platform Adept_util Array Format Hashtbl Int List Node Option
