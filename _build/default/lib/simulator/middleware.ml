open Adept_platform
open Adept_hierarchy
module Params = Adept_model.Params

type selection =
  | Best_prediction
  | Round_robin
  | Random_child of Adept_util.Rng.t
  | Database

(* Per-request aggregation state at one agent: replies collected so far,
   in arrival order, plus the request's service cost for selection. *)
type pending = {
  mutable received : int;
  mutable candidates : (Node.id * float) list;
  req_wapp : float;
}

type agent_state = {
  a_resource : Resource.t;
  children : Node.id array;
  a_parent : Node.id option;
  mutable rr : int;
  inflight : (int, pending) Hashtbl.t;
}

type server_state = {
  s_resource : Resource.t;
  s_parent : Node.id;
  mutable reserved : float;
      (* MFlop selected for this server but not yet booked.  The root
         maintains this ledger: it adds the chosen server's work at
         decision time and the entry drains when the client's service
         request reaches the server.  Decisions consult the ledger so that
         requests deciding within one scheduling round-trip of each other
         do not herd onto the same server from identical stale
         predictions. *)
}

type element = Agent_el of agent_state | Server_el of server_state

type t = {
  engine : Engine.t;
  params : Params.t;
  platform : Platform.t;
  latency : float;
  elements : element option array;
  root : Node.id;
  trace : Trace.t;
  selection : selection;
  mutable next_req : int;
  continuations : (int, float * (Node.id -> unit)) Hashtbl.t;
      (* per request: the service cost to reserve and the client callback *)
  database : (Node.id, float * float) Hashtbl.t;
      (* monitoring database at the root: server id -> (reported backlog
         seconds, report arrival time) *)
}

let element t id =
  match t.elements.(id) with
  | Some e -> e
  | None -> invalid_arg (Printf.sprintf "Middleware: node %d not deployed" id)

let resource t id =
  match t.elements.(id) with
  | Some (Agent_el a) -> a.a_resource
  | Some (Server_el s) -> s.s_resource
  | None -> raise Not_found

let root t = t.root

let engine t = t.engine

let trace t = t.trace

let server_ids t =
  let ids = ref [] in
  Array.iteri
    (fun id el -> match el with Some (Server_el _) -> ids := id :: !ids | _ -> ())
    t.elements;
  List.rev !ids

let agent_ids t =
  let ids = ref [] in
  Array.iteri
    (fun id el -> match el with Some (Agent_el _) -> ids := id :: !ids | _ -> ())
    t.elements;
  List.rev !ids

let deploy ?(trace = Trace.disabled) ?(selection = Best_prediction) ?monitoring_period
    ~engine ~params ~platform tree =
  (match monitoring_period with
  | Some p when p <= 0.0 || not (Float.is_finite p) ->
      invalid_arg "Middleware.deploy: monitoring_period must be positive and finite"
  | Some _ | None -> ());
  if selection = Database && monitoring_period = None then
    invalid_arg "Middleware.deploy: Database selection requires a monitoring_period";
  (match Validate.check ~platform tree with
  | Ok () -> ()
  | Error errs ->
      invalid_arg
        ("Middleware.deploy: invalid hierarchy: "
        ^ String.concat "; " (List.map Validate.error_to_string errs)));
  let elements = Array.make (Platform.size platform) None in
  let mk_resource node =
    Resource.create ~name:(Node.name node) ~power:(Node.power node)
  in
  let rec instantiate parent = function
    | Tree.Server node ->
        let parent =
          match parent with
          | Some p -> p
          | None -> invalid_arg "Middleware.deploy: root server"
        in
        elements.(Node.id node) <-
          Some
            (Server_el
               { s_resource = mk_resource node; s_parent = parent; reserved = 0.0 })
    | Tree.Agent (node, children) ->
        let child_ids =
          Array.of_list (List.map (fun c -> Node.id (Tree.root_node c)) children)
        in
        elements.(Node.id node) <-
          Some
            (Agent_el
               {
                 a_resource = mk_resource node;
                 children = child_ids;
                 a_parent = parent;
                 rr = 0;
                 inflight = Hashtbl.create 64;
               });
        List.iter (instantiate (Some (Node.id node))) children
  in
  instantiate None tree;
  let t =
    {
      engine;
      params;
      platform;
      latency = Link.latency (Platform.link platform);
      elements;
      root = Node.id (Tree.root_node tree);
      trace;
      selection;
      next_req = 0;
      continuations = Hashtbl.create 64;
      database = Hashtbl.create 64;
    }
  in
  (* Periodic monitoring: every server reports its backlog to the root's
     database, paying the message at both ends (lane at the server, port
     at the root — monitoring traffic really does contend with
     scheduling). *)
  (match monitoring_period with
  | None -> ()
  | Some period ->
      let root_res =
        match elements.(t.root) with
        | Some (Agent_el a) -> a.a_resource
        | Some (Server_el _) | None -> invalid_arg "Middleware.deploy: no root agent"
      in
      Array.iteri
        (fun id el ->
          match el with
          | Some (Server_el s) ->
              let rec report () =
                let backlog =
                  Resource.backlog s.s_resource ~now:(Engine.now engine)
                in
                Network.transfer engine
                  ~bandwidth:(Platform.bandwidth platform id t.root)
                  ~latency:t.latency ~src:(Network.Lane s.s_resource)
                  ~src_size:params.Params.server.srep ~dst:(Network.Port root_res)
                  ~dst_size:params.Params.agent.srep
                  ~on_delivered:(fun () ->
                    Hashtbl.replace t.database id (backlog, Engine.now engine))
                  ();
                Engine.schedule engine ~delay:period report
              in
              (* desynchronise first reports across servers *)
              Engine.schedule engine
                ~delay:(period *. float_of_int (id + 1) /. float_of_int (Array.length elements))
                report
          | Some (Agent_el _) | None -> ())
        elements);
  t

let bandwidth_between t a b = Platform.bandwidth t.platform a b

(* Bandwidth for messages between a platform node and a client machine:
   the node's intra-cluster bandwidth (clients are not modelled as
   bottlenecks, only the node-side port cost matters). *)
let bandwidth_to_client t id = Platform.bandwidth t.platform id id

let book_compute t resource ~work k =
  let now = Engine.now t.engine in
  let duration = work /. Resource.power resource in
  let _, finish = Resource.book resource ~now ~duration in
  Engine.schedule_at t.engine ~time:finish (fun () -> k duration)

let argmin_candidate candidates ~effective =
  Array.fold_left
    (fun best (id, _) ->
      let adjusted = effective id in
      match best with
      | Some (bid, bp) when bp < adjusted || (bp = adjusted && bid <= id) -> best
      | Some _ | None -> Some (id, adjusted))
    None candidates
  |> Option.get
  |> fun (id, _) ->
  (* report the chosen server with its raw prediction upward *)
  (id, List.assoc id (Array.to_list candidates))

let choose_candidate t (a : agent_state) pending =
  let candidates = Array.of_list (List.rev pending.candidates) in
  match t.selection with
  | Best_prediction ->
      (* The paper's agents "select potential servers from a list of
         servers maintained in the database by frequent monitoring"
         (footnote 1): the decision reads the current load picture —
         booked backlog plus the reservation ledger of work promised by
         decisions whose service requests are still in flight — rather
         than the prediction snapshots the replies carried, which go stale
         within one scheduling round-trip and would herd concurrent
         requests onto one server. *)
      let now = Engine.now t.engine in
      let effective id =
        match t.elements.(id) with
        | Some (Server_el s) ->
            let w = Resource.power s.s_resource in
            Resource.backlog s.s_resource ~now
            +. (s.reserved /. w)
            +. (pending.req_wapp /. w)
        | Some (Agent_el _) | None -> Float.infinity
      in
      argmin_candidate candidates ~effective
  | Database ->
      (* Same decision, but from the last periodic report instead of
         fresh state: the reported backlog is decayed by the time since
         the report (the server has been draining meanwhile) and
         corrected by the reservation ledger. *)
      let now = Engine.now t.engine in
      let effective id =
        match t.elements.(id) with
        | Some (Server_el s) ->
            let w = Resource.power s.s_resource in
            let reported =
              match Hashtbl.find_opt t.database id with
              | Some (backlog, at) -> Float.max 0.0 (backlog -. (now -. at))
              | None -> 0.0
            in
            reported +. (s.reserved /. w) +. (pending.req_wapp /. w)
        | Some (Agent_el _) | None -> Float.infinity
      in
      argmin_candidate candidates ~effective
  | Round_robin ->
      let i = a.rr mod Array.length candidates in
      a.rr <- a.rr + 1;
      candidates.(i)
  | Random_child rng -> Adept_util.Rng.pick rng candidates

(* The scheduling phase, message by message.  [handle_request] runs when a
   request has been fully received at [id]; [handle_reply] when a child's
   reply has been fully received at agent [id]. *)
let rec handle_request t ~req_id ~wapp id =
  match element t id with
  | Agent_el a ->
      book_compute t a.a_resource ~work:t.params.Params.agent.wreq (fun seconds ->
          Trace.record_agent_request_compute t.trace ~seconds;
          Hashtbl.replace a.inflight req_id
            { received = 0; candidates = []; req_wapp = wapp };
          Array.iter (fun child -> forward_down t ~req_id ~wapp ~from:id ~child) a.children)
  | Server_el s ->
      (* Prediction work charges the port (it steals cycles from any
         running application) but the reply is not queued behind booked
         services: the servant thread answers after Wpre/w of wall time.
         The prediction itself is "when would your job finish if you chose
         me now": current queue, the prediction step, then the service. *)
      let now = Engine.now t.engine in
      let backlog = Resource.backlog s.s_resource ~now in
      let wpre_duration =
        t.params.Params.server.wpre /. Resource.power s.s_resource
      in
      Resource.charge s.s_resource ~now ~duration:wpre_duration;
      Trace.record_server_prediction t.trace ~seconds:wpre_duration;
      let prediction =
        backlog +. wpre_duration +. (wapp /. Resource.power s.s_resource)
      in
      Engine.schedule t.engine ~delay:wpre_duration (fun () ->
          send_reply_up t ~req_id ~from:id ~to_:s.s_parent ~candidate:(id, prediction))

and forward_down t ~req_id ~wapp ~from ~child =
  let src_res = resource t from in
  let dst_is_agent, dst =
    match element t child with
    | Agent_el a -> (true, Network.Port a.a_resource)
    | Server_el s -> (false, Network.Lane s.s_resource)
  in
  let src_size = t.params.Params.agent.sreq in
  let dst_size =
    if dst_is_agent then t.params.Params.agent.sreq else t.params.Params.server.sreq
  in
  Trace.record_message t.trace ~kind:Trace.Sched_request ~role:Trace.Agent_end
    ~size:src_size;
  Trace.record_message t.trace ~kind:Trace.Sched_request
    ~role:(if dst_is_agent then Trace.Agent_end else Trace.Server_end)
    ~size:dst_size;
  Network.transfer t.engine
    ~bandwidth:(bandwidth_between t from child)
    ~latency:t.latency ~src:(Network.Port src_res) ~src_size ~dst ~dst_size
    ~on_delivered:(fun () -> handle_request t ~req_id ~wapp child)
    ()

and send_reply_up t ~req_id ~from ~to_ ~candidate =
  let src_is_agent, src =
    match element t from with
    | Agent_el a -> (true, Network.Port a.a_resource)
    | Server_el s -> (false, Network.Lane s.s_resource)
  in
  let src_size =
    if src_is_agent then t.params.Params.agent.srep else t.params.Params.server.srep
  in
  let dst_res =
    match element t to_ with
    | Agent_el a -> a.a_resource
    | Server_el _ -> invalid_arg "Middleware: reply sent to a server"
  in
  let dst_size = t.params.Params.agent.srep in
  Trace.record_message t.trace ~kind:Trace.Sched_reply
    ~role:(if src_is_agent then Trace.Agent_end else Trace.Server_end)
    ~size:src_size;
  Trace.record_message t.trace ~kind:Trace.Sched_reply ~role:Trace.Agent_end
    ~size:dst_size;
  Network.transfer t.engine
    ~bandwidth:(bandwidth_between t from to_)
    ~latency:t.latency ~src ~src_size ~dst:(Network.Port dst_res) ~dst_size
    ~on_delivered:(fun () -> handle_reply t ~req_id ~agent:to_ ~candidate)
    ()

and handle_reply t ~req_id ~agent ~candidate =
  match element t agent with
  | Server_el _ -> invalid_arg "Middleware: reply delivered to a server"
  | Agent_el a -> (
      match Hashtbl.find_opt a.inflight req_id with
      | None -> invalid_arg "Middleware: reply for unknown request"
      | Some pending ->
          pending.received <- pending.received + 1;
          pending.candidates <- candidate :: pending.candidates;
          if pending.received = Array.length a.children then begin
            Hashtbl.remove a.inflight req_id;
            let degree = Array.length a.children in
            let work = Params.wrep t.params ~degree in
            book_compute t a.a_resource ~work (fun seconds ->
                Trace.record_agent_reply_compute t.trace ~degree ~seconds;
                let chosen = choose_candidate t a pending in
                match a.a_parent with
                | Some parent ->
                    send_reply_up t ~req_id ~from:agent ~to_:parent ~candidate:chosen
                | None ->
                    (* Root: answer the client. *)
                    let src_size = t.params.Params.agent.srep in
                    Trace.record_message t.trace ~kind:Trace.Sched_reply
                      ~role:Trace.Agent_end ~size:src_size;
                    let req_wapp, continuation =
                      match Hashtbl.find_opt t.continuations req_id with
                      | Some k -> k
                      | None -> invalid_arg "Middleware: request has no continuation"
                    in
                    Hashtbl.remove t.continuations req_id;
                    (match element t (fst chosen) with
                    | Server_el s -> s.reserved <- s.reserved +. req_wapp
                    | Agent_el _ -> invalid_arg "Middleware: chose an agent");
                    Network.transfer t.engine
                      ~bandwidth:(bandwidth_to_client t agent)
                      ~latency:t.latency ~src:(Network.Port a.a_resource) ~src_size
                      ~dst:Network.Instant ~dst_size:0.0
                      ~on_delivered:(fun () -> continuation (fst chosen))
                      ())
          end)

let submit t ~wapp ~on_scheduled =
  let req_id = t.next_req in
  t.next_req <- t.next_req + 1;
  Hashtbl.replace t.continuations req_id (wapp, fun server -> on_scheduled ~server);
  let dst_size = t.params.Params.agent.sreq in
  let root_res = resource t t.root in
  Trace.record_message t.trace ~kind:Trace.Sched_request ~role:Trace.Agent_end
    ~size:dst_size;
  Network.transfer t.engine
    ~bandwidth:(bandwidth_to_client t t.root)
    ~latency:t.latency ~src:Network.Instant ~src_size:0.0 ~dst:(Network.Port root_res)
    ~dst_size
    ~on_delivered:(fun () -> handle_request t ~req_id ~wapp t.root)
    ()

let request_service t ~server ~wapp ~on_done =
  match element t server with
  | Agent_el _ -> invalid_arg "Middleware.request_service: target is an agent"
  | Server_el s ->
      let dst_size = t.params.Params.server.sreq in
      Trace.record_message t.trace ~kind:Trace.Service_request ~role:Trace.Server_end
        ~size:dst_size;
      (* The promised work is now being submitted; it will appear in the
         server's booked backlog as soon as the request arrives, so the
         ledger entry drains here. *)
      s.reserved <- Float.max 0.0 (s.reserved -. wapp);
      Network.transfer t.engine
        ~bandwidth:(bandwidth_to_client t server)
        ~latency:t.latency ~src:Network.Instant ~src_size:0.0
        ~dst:(Network.Port s.s_resource) ~dst_size
        ~on_delivered:(fun () ->
          book_compute t s.s_resource ~work:wapp (fun _seconds ->
              (* The response leaves as soon as the computation ends: the
                 send charges port capacity but is not queued behind work
                 booked after this job (a strict-FIFO send would trap every
                 finished reply behind the whole compute backlog). *)
              let src_size = t.params.Params.server.srep in
              Trace.record_message t.trace ~kind:Trace.Service_reply
                ~role:Trace.Server_end ~size:src_size;
              Network.transfer t.engine
                ~bandwidth:(bandwidth_to_client t server)
                ~latency:t.latency ~src:(Network.Lane s.s_resource) ~src_size
                ~dst:Network.Instant ~dst_size:0.0
                ~on_delivered:(fun () -> on_done ())
                ()))
        ()
