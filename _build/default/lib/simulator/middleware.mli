(** Simulated DIET-style middleware: a deployed hierarchy executing the
    two phases of Figure 1.

    Scheduling phase: the client's request enters the root agent, which
    books [Wreq], forwards down to every child, collects one reply per
    child, books [Wrep(d)], and answers up; servers book [Wpre] and reply
    with a performance prediction.  Service phase: the client contacts the
    selected server directly; the server books [Wapp] and responds.  Every
    computation and both ends of every message occupy the owning node's
    single port (see {!Resource}). *)

open Adept_platform

type selection =
  | Best_prediction
      (** DIET's policy with fresh monitoring: smallest predicted
          completion from the server's current state. *)
  | Round_robin  (** Each agent cycles through its children. *)
  | Random_child of Adept_util.Rng.t  (** Uniform child choice per agent. *)
  | Database
      (** Selection from the monitoring database (the paper's footnote 1:
          "a list of servers maintained in the database by frequent
          monitoring"): servers push load reports every
          [monitoring_period] seconds, each report costing its message
          transfer at both ends, and decisions use the last report —
          decayed by the time since — instead of fresh state.  Requires
          [monitoring_period]. *)

type t

val deploy :
  ?trace:Trace.t ->
  ?selection:selection ->
  ?monitoring_period:float ->
  engine:Engine.t ->
  params:Adept_model.Params.t ->
  platform:Platform.t ->
  Adept_hierarchy.Tree.t ->
  t
(** Instantiate resources for every node of the hierarchy.  The hierarchy
    must validate against the platform.  [monitoring_period] (seconds,
    positive) starts the periodic load reports and is required by the
    [Database] selection.
    @raise Invalid_argument otherwise. *)

val submit :
  t -> wapp:float -> on_scheduled:(server:Node.id -> unit) -> unit
(** Inject one scheduling request at the root (from an [Instant] client
    endpoint); [on_scheduled] fires when the client receives the reply
    naming the selected server. *)

val request_service :
  t -> server:Node.id -> wapp:float -> on_done:(unit -> unit) -> unit
(** The service phase: direct client→server request of [wapp] MFlop.
    @raise Invalid_argument if [server] is not a server of the
    hierarchy. *)

val resource : t -> Node.id -> Resource.t
(** The simulated port of a deployed node.
    @raise Not_found for nodes outside the hierarchy. *)

val root : t -> Node.id
val server_ids : t -> Node.id list
val agent_ids : t -> Node.id list
val engine : t -> Engine.t
val trace : t -> Trace.t
