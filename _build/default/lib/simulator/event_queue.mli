(** Binary min-heap keyed by (time, sequence number).

    The sequence number makes event ordering total and deterministic:
    events scheduled for the same instant fire in insertion order. *)

type 'a t

val create : unit -> 'a t

val add : 'a t -> time:float -> 'a -> unit
(** Insert with an automatically increasing sequence number.
    @raise Invalid_argument on NaN time. *)

val pop_min : 'a t -> (float * 'a) option
(** Remove and return the earliest event. *)

val peek_min : 'a t -> (float * 'a) option

val size : 'a t -> int
val is_empty : 'a t -> bool
val clear : 'a t -> unit
