(** Discrete-event simulation engine.

    A monotonically advancing clock driving a queue of timestamped
    callbacks.  Deterministic: same schedule calls, same execution order
    (ties fire in insertion order). *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time, seconds; starts at 0. *)

val schedule_at : t -> time:float -> (unit -> unit) -> unit
(** Enqueue a callback.  @raise Invalid_argument for a time in the past
    (before [now]) or NaN. *)

val schedule : t -> delay:float -> (unit -> unit) -> unit
(** [schedule_at ~time:(now + delay)].  @raise Invalid_argument on a
    negative delay. *)

val pending : t -> int

type outcome = Exhausted  (** No events left. *)
             | Horizon_reached  (** Stopped at the time limit. *)
             | Event_limit  (** Stopped after [max_events]. *)

val run : ?until:float -> ?max_events:int -> t -> outcome
(** Process events in order.  [until] stops before executing any event
    later than the horizon and sets the clock to the horizon;
    [max_events] is a safety valve against runaway simulations. *)

val step : t -> bool
(** Execute the next event; false when empty. *)
