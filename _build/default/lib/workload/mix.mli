(** Job mixes.

    The paper notes that "at the time of deployment, one can know neither
    the exact job mix nor the order in which jobs will arrive" and plans
    for an assumed mix.  A mix is a weighted set of jobs; the planner uses
    its expected [Wapp], the simulator can draw jobs from it. *)

type t

val single : Job.t -> t
(** The degenerate mix used by all paper experiments. *)

val weighted : (Job.t * float) list -> t
(** Jobs with positive weights (normalised internally).
    @raise Invalid_argument on an empty list or non-positive weights. *)

val jobs : t -> (Job.t * float) list
(** Jobs with normalised weights summing to 1. *)

val expected_wapp : t -> float
(** Weight-averaged [Wapp].  A server processing the mix sequentially
    completes jobs at [w / expected_wapp], so this is the rate-correct
    effective cost for planning (see the [ablation-mix] experiment). *)

val harmonic_expected_wapp : t -> float
(** [1 / sum (p_i / wapp_i)] — the mean of per-job {e rates} converted
    back to a cost.  Always <= {!expected_wapp} (equal on single-job
    mixes); planning with it systematically under-provisions on wide
    mixes, which the [ablation-mix] experiment quantifies.  Provided as
    the tempting-but-wrong alternative and for rate-domain analyses. *)

val draw : t -> Adept_util.Rng.t -> Job.t
(** Sample a job proportionally to weight. *)

val pp : Format.formatter -> t -> unit
