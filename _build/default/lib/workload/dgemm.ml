type t = { n : int }

let make n =
  if n <= 0 then invalid_arg "Dgemm.make: order must be positive";
  { n }

let order t = t.n

let flops t =
  let n = float_of_int t.n in
  (2.0 *. n *. n *. n) +. (2.0 *. n *. n)

let mflops t = flops t /. 1e6

let sizes_used_in_paper = List.map make [ 10; 100; 200; 310; 1000 ]

let pp ppf t = Format.fprintf ppf "DGEMM %dx%d" t.n t.n

let equal a b = a.n = b.n
