type t = { jobs : (Job.t * float) array }

let weighted entries =
  if entries = [] then invalid_arg "Mix.weighted: empty mix";
  let total =
    List.fold_left
      (fun acc (_, w) ->
        if w <= 0.0 || not (Float.is_finite w) then
          invalid_arg "Mix.weighted: weights must be positive and finite";
        acc +. w)
      0.0 entries
  in
  { jobs = Array.of_list (List.map (fun (j, w) -> (j, w /. total)) entries) }

let single job = weighted [ (job, 1.0) ]

let jobs t = Array.to_list t.jobs

let expected_wapp t =
  Array.fold_left (fun acc (j, p) -> acc +. (p *. Job.wapp j)) 0.0 t.jobs

let harmonic_expected_wapp t =
  let inv = Array.fold_left (fun acc (j, p) -> acc +. (p /. Job.wapp j)) 0.0 t.jobs in
  1.0 /. inv

let draw t rng = Adept_util.Rng.pick_weighted rng t.jobs

let pp ppf t =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf " + ")
    (fun ppf (j, p) -> Format.fprintf ppf "%.0f%% %a" (p *. 100.0) Job.pp j)
    ppf (jobs t)
