(** Service requests.

    A job is what one client submission asks of the platform: an
    application identified by name with a compute weight [Wapp] (MFlop).
    The scheduling-phase costs come from the middleware parameters, not
    the job. *)

type t = private {
  app : string;  (** Service name, e.g. ["dgemm-310"]. *)
  wapp : float;  (** MFlop of the service phase; > 0. *)
}

val make : app:string -> wapp:float -> t
(** @raise Invalid_argument if [wapp <= 0] or the name is empty. *)

val of_dgemm : Dgemm.t -> t
(** ["dgemm-<n>"] with [Wapp = Dgemm.mflops]. *)

val app : t -> string
val wapp : t -> float
val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
