type t = { app : string; wapp : float }

let make ~app ~wapp =
  if wapp <= 0.0 || not (Float.is_finite wapp) then
    invalid_arg "Job.make: wapp must be positive and finite";
  if app = "" then invalid_arg "Job.make: empty application name";
  { app; wapp }

let of_dgemm d = make ~app:(Printf.sprintf "dgemm-%d" (Dgemm.order d)) ~wapp:(Dgemm.mflops d)

let app t = t.app
let wapp t = t.wapp

let pp ppf t = Format.fprintf ppf "%s (%.3f MFlop)" t.app t.wapp

let equal a b = a.app = b.app && a.wapp = b.wapp
