(** The DGEMM workload used throughout the paper's evaluation: a square
    matrix multiplication from level-3 BLAS, parameterised by matrix
    order [n].

    The cost model is the classic [2 n^3] floating-point operations of
    [C <- alpha*A*B + beta*C] (the [2 n^2] scaling terms are included for
    completeness; they matter at the paper's smallest size, 10x10). *)

type t = private { n : int }

val make : int -> t
(** @raise Invalid_argument if [n <= 0]. *)

val order : t -> int

val flops : t -> float
(** [2 n^3 + 2 n^2] floating point operations. *)

val mflops : t -> float
(** {!flops} / 10^6 — the [Wapp] of the model, MFlop. *)

val sizes_used_in_paper : t list
(** 10, 100, 200, 310, 1000 — every size exercised in Section 5. *)

val pp : Format.formatter -> t -> unit
val equal : t -> t -> bool
