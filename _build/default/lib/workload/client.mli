(** Client behaviour.

    The paper's load generator is "a script that runs a single request at
    a time in a continual loop", with one client script launched per
    second during ramp-up.  A client configuration captures the mix it
    draws from and an optional think time between the response and the
    next submission (zero in the paper). *)

type t = private {
  mix : Mix.t;
  think_time : float;  (** Seconds between response and next request; >= 0. *)
}

val make : ?think_time:float -> Mix.t -> t
(** @raise Invalid_argument if [think_time < 0]. *)

val closed_loop : Job.t -> t
(** The paper's client: single-job mix, zero think time. *)

val mix : t -> Mix.t
val think_time : t -> float
val pp : Format.formatter -> t -> unit
