lib/workload/client.ml: Float Format Mix
