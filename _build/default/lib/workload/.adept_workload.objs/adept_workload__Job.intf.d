lib/workload/job.mli: Dgemm Format
