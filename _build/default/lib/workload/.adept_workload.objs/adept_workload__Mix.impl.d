lib/workload/mix.ml: Adept_util Array Float Format Job List
