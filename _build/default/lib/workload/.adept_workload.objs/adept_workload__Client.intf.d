lib/workload/client.mli: Format Job Mix
