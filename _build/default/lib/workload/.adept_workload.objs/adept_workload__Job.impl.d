lib/workload/job.ml: Dgemm Float Format Printf
