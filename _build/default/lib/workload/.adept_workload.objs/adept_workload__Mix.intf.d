lib/workload/mix.mli: Adept_util Format Job
