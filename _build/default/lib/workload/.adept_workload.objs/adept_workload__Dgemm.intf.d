lib/workload/dgemm.mli: Format
