lib/workload/dgemm.ml: Format List
