type t = { mix : Mix.t; think_time : float }

let make ?(think_time = 0.0) mix =
  if think_time < 0.0 || not (Float.is_finite think_time) then
    invalid_arg "Client.make: think_time must be non-negative and finite";
  { mix; think_time }

let closed_loop job = make (Mix.single job)

let mix t = t.mix
let think_time t = t.think_time

let pp ppf t =
  Format.fprintf ppf "closed-loop client, think %.3gs, mix: %a" t.think_time Mix.pp t.mix
