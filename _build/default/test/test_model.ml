(* Tests for Adept_model: Table 3 parameters, Eqs. 1-5 costs, Eqs. 10-16
   throughput, demand, and the M(r,s,w) capability model. *)

module Params = Adept_model.Params
module Costs = Adept_model.Costs
module Throughput = Adept_model.Throughput
module Demand = Adept_model.Demand
module Capability = Adept_model.Capability

let p = Params.diet_lyon

let check_close ?(eps = 1e-9) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

(* ---------- Params ---------- *)

let test_params_table3_values () =
  check_close "Wreq" 0.17 p.Params.agent.wreq;
  check_close "Wfix" 4.0e-3 p.Params.agent.wfix;
  check_close "Wsel" 5.4e-3 p.Params.agent.wsel;
  check_close "agent Sreq" 5.3e-3 p.Params.agent.sreq;
  check_close "agent Srep" 5.4e-3 p.Params.agent.srep;
  check_close "Wpre" 6.4e-3 p.Params.server.wpre;
  check_close "server Sreq" 5.3e-5 p.Params.server.sreq;
  check_close "server Srep" 6.4e-5 p.Params.server.srep

let test_params_wrep_linear () =
  check_close "Wrep(0)" 4.0e-3 (Params.wrep p ~degree:0);
  check_close "Wrep(10)" (4.0e-3 +. (5.4e-3 *. 10.0)) (Params.wrep p ~degree:10);
  Alcotest.check_raises "negative degree" (Invalid_argument "Params.wrep: negative degree")
    (fun () -> ignore (Params.wrep p ~degree:(-1)))

let test_params_validation () =
  Alcotest.(check bool) "negative component rejected" true
    (match
       Params.make
         ~agent:{ p.Params.agent with Params.wreq = -1.0 }
         ~server:p.Params.server
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_params_scale () =
  let scaled = Params.scale_agent_compute p 2.0 in
  check_close "Wreq doubled" (2.0 *. p.Params.agent.wreq) scaled.Params.agent.wreq;
  check_close "sizes unchanged" p.Params.agent.sreq scaled.Params.agent.sreq

(* ---------- Costs (Eqs. 1-5) ---------- *)

let b = 100.0

let w = 730.0

let test_eq1_agent_receive () =
  (* (Sreq + d*Srep)/B *)
  check_close "d=3" ((5.3e-3 +. (3.0 *. 5.4e-3)) /. 100.0)
    (Costs.agent_receive_time p ~bandwidth:b ~degree:3)

let test_eq2_agent_send () =
  check_close "d=3" (((3.0 *. 5.3e-3) +. 5.4e-3) /. 100.0)
    (Costs.agent_send_time p ~bandwidth:b ~degree:3)

let test_eq3_eq4_server_messages () =
  check_close "receive" (5.3e-5 /. 100.0) (Costs.server_receive_time p ~bandwidth:b);
  check_close "send" (6.4e-5 /. 100.0) (Costs.server_send_time p ~bandwidth:b)

let test_eq5_agent_compute () =
  (* (Wreq + Wfix + Wsel*d)/w *)
  check_close "d=5" ((0.17 +. 4.0e-3 +. (5.0 *. 5.4e-3)) /. 730.0)
    (Costs.agent_comp_time p ~power:w ~degree:5)

let test_server_times () =
  check_close "prediction" (6.4e-3 /. 730.0) (Costs.server_prediction_time p ~power:w);
  check_close "service" (16.0 /. 730.0) (Costs.server_service_time ~power:w ~wapp:16.0)

let test_agent_request_time_is_sum () =
  let d = 4 in
  check_close "sum of eq1+eq5+eq2"
    (Costs.agent_receive_time p ~bandwidth:b ~degree:d
    +. Costs.agent_comp_time p ~power:w ~degree:d
    +. Costs.agent_send_time p ~bandwidth:b ~degree:d)
    (Costs.agent_request_time p ~bandwidth:b ~power:w ~degree:d)

let test_costs_validation () =
  Alcotest.(check bool) "bad bandwidth" true
    (match Costs.agent_receive_time p ~bandwidth:0.0 ~degree:1 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad degree" true
    (match Costs.agent_send_time p ~bandwidth:1.0 ~degree:(-1) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Throughput (Eqs. 10-16) ---------- *)

let servers k = List.init k (fun _ -> { Throughput.power = w; wapp = 16.0 })

let test_eq14_agent_term () =
  (* hand-computed star degree 1 on Lyon: 1/(eq1+eq5+eq2) *)
  let expected = 1.0 /. Costs.agent_request_time p ~bandwidth:b ~power:w ~degree:1 in
  check_close "agent_sched d=1" expected
    (Throughput.agent_sched p ~bandwidth:b ~power:w ~degree:1);
  Alcotest.(check bool) "known value ~2175" true
    (Float.abs (expected -. 2175.1) < 1.0)

let test_eq14_server_term () =
  let expected =
    1.0 /. ((6.4e-3 /. 730.0) +. (5.3e-5 /. 100.0) +. (6.4e-5 /. 100.0))
  in
  check_close "server_sched" expected (Throughput.server_sched p ~bandwidth:b ~power:w)

let test_eq10_service_comp_time () =
  (* one server: (1 + Wpre/Wapp) / (w/Wapp) *)
  let expected = (1.0 +. (6.4e-3 /. 16.0)) /. (730.0 /. 16.0) in
  check_close "one server" expected (Throughput.service_comp_time p (servers 1))

let test_eq15_service_scales_linearly () =
  let s1 = Throughput.service p ~bandwidth:b (servers 1) in
  let s2 = Throughput.service p ~bandwidth:b (servers 2) in
  let s4 = Throughput.service p ~bandwidth:b (servers 4) in
  Alcotest.(check bool) "2 servers ~2x" true (Float.abs ((s2 /. s1) -. 2.0) < 0.01);
  Alcotest.(check bool) "4 servers ~4x" true (Float.abs ((s4 /. s1) -. 4.0) < 0.03)

let test_eq15_heterogeneous () =
  (* a server of double power contributes double rate *)
  let hetero =
    [ { Throughput.power = w; wapp = 16.0 }; { Throughput.power = 2.0 *. w; wapp = 16.0 } ]
  in
  let s = Throughput.service p ~bandwidth:b hetero in
  let s3 = Throughput.service p ~bandwidth:b (servers 3) in
  Alcotest.(check bool) "w + 2w ~ 3 servers" true (Float.abs ((s /. s3) -. 1.0) < 0.01)

let test_eq16_platform_min () =
  let spec = { Throughput.agents = [ (w, 2) ]; servers = servers 2 } in
  let sched = Throughput.sched p ~bandwidth:b spec in
  let service = Throughput.service p ~bandwidth:b spec.Throughput.servers in
  check_close "rho = min" (Float.min sched service)
    (Throughput.platform p ~bandwidth:b spec)

let test_bottleneck_classification () =
  (* DGEMM 10 star-2: agent-limited; DGEMM 200 star-2: service-limited *)
  let tiny = { Throughput.agents = [ (w, 2) ];
               servers = List.init 2 (fun _ -> { Throughput.power = w; wapp = 2.2e-3 }) } in
  let big = { Throughput.agents = [ (w, 2) ]; servers = servers 2 } in
  Alcotest.(check bool) "tiny jobs agent-limited" true
    (Throughput.bottleneck p ~bandwidth:b tiny = `Agent_sched);
  Alcotest.(check bool) "big jobs service-limited" true
    (Throughput.bottleneck p ~bandwidth:b big = `Service)

let test_completed_per_server () =
  let set = servers 3 in
  let t_one = Throughput.service_comp_time p set in
  let horizon = 10.0 in
  let counts = Throughput.completed_per_server p set ~horizon in
  let total = List.fold_left ( +. ) 0.0 counts in
  check_close ~eps:1e-6 "sums to N = T/t_one" (horizon /. t_one) total;
  (* homogeneous servers complete equal shares *)
  List.iter (fun n -> check_close ~eps:1e-6 "equal share" (total /. 3.0) n) counts

let test_completed_per_server_weak_clamped () =
  (* a hopelessly weak server is clamped at zero, not negative *)
  let set =
    [ { Throughput.power = 1e4; wapp = 1.0 }; { Throughput.power = 1e-4; wapp = 1.0 } ]
  in
  let counts = Throughput.completed_per_server p set ~horizon:1.0 in
  List.iter (fun n -> Alcotest.(check bool) "non-negative" true (n >= 0.0)) counts

let test_throughput_validation () =
  Alcotest.(check bool) "no servers" true
    (match Throughput.service_comp_time p [] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "degree 0 agent" true
    (match Throughput.agent_sched p ~bandwidth:b ~power:w ~degree:0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Demand ---------- *)

let test_demand () =
  let d = Demand.rate 100.0 in
  Alcotest.(check (float 0.0)) "cap" 100.0 (Demand.cap d 500.0);
  Alcotest.(check (float 0.0)) "no cap below" 50.0 (Demand.cap d 50.0);
  Alcotest.(check bool) "met" true (Demand.is_met d 100.0);
  Alcotest.(check bool) "not met" false (Demand.is_met d 99.9);
  Alcotest.(check bool) "unbounded never met" false (Demand.is_met Demand.unbounded 1e12);
  Alcotest.(check (float 0.0)) "min_target rate" 100.0 (Demand.min_target d 200.0);
  Alcotest.(check (float 0.0)) "min_target unbounded" 200.0
    (Demand.min_target Demand.unbounded 200.0)

let test_demand_validation () =
  Alcotest.check_raises "zero rate"
    (Invalid_argument "Demand.rate: rate must be positive and finite") (fun () ->
      ignore (Demand.rate 0.0))

let test_demand_equal () =
  Alcotest.(check bool) "rate eq" true (Demand.equal (Demand.rate 5.0) (Demand.rate 5.0));
  Alcotest.(check bool) "mixed neq" false (Demand.equal Demand.unbounded (Demand.rate 5.0))

(* ---------- Capability ---------- *)

let test_capability_durations () =
  check_close "send" 0.05
    (Capability.duration (Capability.Send 5.0) ~power:1.0 ~bandwidth:100.0);
  check_close "compute" 2.0
    (Capability.duration (Capability.Compute 1460.0) ~power:730.0 ~bandwidth:1.0)

let test_capability_serial_total () =
  let activities =
    [ Capability.Receive 5.3e-3; Capability.Compute 0.17; Capability.Send 5.4e-3 ]
  in
  let total = Capability.total activities ~power:730.0 ~bandwidth:100.0 in
  check_close "serial sum"
    ((5.3e-3 /. 100.0) +. (0.17 /. 730.0) +. (5.4e-3 /. 100.0))
    total

(* ---------- properties ---------- *)

let prop_agent_sched_decreasing_in_degree =
  QCheck.Test.make ~count:200 ~name:"agent sched power strictly decreases with degree"
    QCheck.(pair (int_range 1 100) (float_range 10.0 5000.0))
    (fun (d, power) ->
      Throughput.agent_sched p ~bandwidth:b ~power ~degree:d
      > Throughput.agent_sched p ~bandwidth:b ~power ~degree:(d + 1))

let prop_service_increasing_in_servers =
  QCheck.Test.make ~count:100 ~name:"service power grows with each server"
    QCheck.(pair (int_range 1 50) (float_range 1.0 1000.0))
    (fun (k, wapp) ->
      let mk k = List.init k (fun _ -> { Throughput.power = w; wapp }) in
      Throughput.service p ~bandwidth:b (mk (k + 1))
      > Throughput.service p ~bandwidth:b (mk k))

let prop_rho_decreasing_in_bandwidth_drop =
  QCheck.Test.make ~count:100 ~name:"rho never increases when bandwidth drops"
    QCheck.(triple (int_range 1 30) (float_range 1.0 100.0) (float_range 1.0 1000.0))
    (fun (d, b_low, wapp) ->
      let spec = { Throughput.agents = [ (w, d) ];
                   servers = List.init d (fun _ -> { Throughput.power = w; wapp }) } in
      Throughput.platform p ~bandwidth:b_low spec
      <= Throughput.platform p ~bandwidth:(b_low *. 2.0) spec +. 1e-9)

let prop_rho_bounded_by_components =
  QCheck.Test.make ~count:200 ~name:"rho <= every component throughput"
    QCheck.(triple (int_range 1 40) (float_range 100.0 2000.0) (float_range 0.1 100.0))
    (fun (d, power, wapp) ->
      let spec = { Throughput.agents = [ (power, d) ];
                   servers = List.init d (fun _ -> { Throughput.power = power; wapp }) } in
      let rho = Throughput.platform p ~bandwidth:b spec in
      rho <= Throughput.sched p ~bandwidth:b spec +. 1e-9
      && rho <= Throughput.service p ~bandwidth:b spec.Throughput.servers +. 1e-9)

let () =
  Alcotest.run "model"
    [
      ( "params",
        [
          Alcotest.test_case "table 3 values" `Quick test_params_table3_values;
          Alcotest.test_case "wrep linear" `Quick test_params_wrep_linear;
          Alcotest.test_case "validation" `Quick test_params_validation;
          Alcotest.test_case "scaling" `Quick test_params_scale;
        ] );
      ( "costs",
        [
          Alcotest.test_case "eq1 agent receive" `Quick test_eq1_agent_receive;
          Alcotest.test_case "eq2 agent send" `Quick test_eq2_agent_send;
          Alcotest.test_case "eq3/eq4 server messages" `Quick test_eq3_eq4_server_messages;
          Alcotest.test_case "eq5 agent compute" `Quick test_eq5_agent_compute;
          Alcotest.test_case "server times" `Quick test_server_times;
          Alcotest.test_case "agent request time" `Quick test_agent_request_time_is_sum;
          Alcotest.test_case "validation" `Quick test_costs_validation;
        ] );
      ( "throughput",
        [
          Alcotest.test_case "eq14 agent term" `Quick test_eq14_agent_term;
          Alcotest.test_case "eq14 server term" `Quick test_eq14_server_term;
          Alcotest.test_case "eq10 service comp time" `Quick test_eq10_service_comp_time;
          Alcotest.test_case "eq15 linear scaling" `Quick test_eq15_service_scales_linearly;
          Alcotest.test_case "eq15 heterogeneous" `Quick test_eq15_heterogeneous;
          Alcotest.test_case "eq16 min" `Quick test_eq16_platform_min;
          Alcotest.test_case "bottleneck classes" `Quick test_bottleneck_classification;
          Alcotest.test_case "eq8 completed per server" `Quick test_completed_per_server;
          Alcotest.test_case "eq8 weak server clamped" `Quick
            test_completed_per_server_weak_clamped;
          Alcotest.test_case "validation" `Quick test_throughput_validation;
        ] );
      ( "demand",
        [
          Alcotest.test_case "cap/met/min_target" `Quick test_demand;
          Alcotest.test_case "validation" `Quick test_demand_validation;
          Alcotest.test_case "equality" `Quick test_demand_equal;
        ] );
      ( "capability",
        [
          Alcotest.test_case "durations" `Quick test_capability_durations;
          Alcotest.test_case "serial total" `Quick test_capability_serial_total;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_agent_sched_decreasing_in_degree;
            prop_service_increasing_in_servers;
            prop_rho_decreasing_in_bandwidth_drop;
            prop_rho_bounded_by_components;
          ] );
    ]
