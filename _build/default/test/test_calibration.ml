(* Tests for Adept_calibration: the Linpack mini-benchmark, the Wrep fit
   pipeline, and the full Table 3 reconstruction. *)

module Linpack = Adept_calibration.Linpack
module Fit = Adept_calibration.Fit
module Table3 = Adept_calibration.Table3
module Params = Adept_model.Params

let params = Params.diet_lyon

let check_close ?(eps = 1e-9) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

(* ---------- Linpack ---------- *)

let test_linpack_daxpy_positive () =
  let m = Linpack.daxpy_mflops ~n:50_000 ~repeats:3 () in
  Alcotest.(check bool) "positive and finite" true (m > 0.0 && Float.is_finite m)

let test_linpack_dgemm_positive () =
  let m = Linpack.dgemm_mflops ~n:48 ~repeats:2 () in
  Alcotest.(check bool) "positive and finite" true (m > 0.0 && Float.is_finite m)

let test_linpack_validation () =
  Alcotest.(check bool) "zero n" true
    (match Linpack.daxpy_mflops ~n:0 () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_background_load_arithmetic () =
  check_close "65% load" 255.5 (Linpack.simulate_background_load ~base:730.0 ~load_fraction:0.65);
  check_close "no load" 730.0 (Linpack.simulate_background_load ~base:730.0 ~load_fraction:0.0);
  Alcotest.(check bool) "full load rejected" true
    (match Linpack.simulate_background_load ~base:1.0 ~load_fraction:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Fit ---------- *)

let test_fit_wrep_synthetic () =
  (* exact synthetic samples: seconds = (wfix + wsel*d)/power *)
  let power = 730.0 in
  let samples =
    Array.of_list
      (List.concat_map
         (fun d ->
           let seconds = (4.0e-3 +. (5.4e-3 *. float_of_int d)) /. power in
           [ (d, seconds); (d, seconds) ])
         [ 1; 2; 4; 8 ])
  in
  match Fit.fit_wrep ~power samples with
  | Error e -> Alcotest.fail e
  | Ok fit ->
      check_close ~eps:1e-9 "wfix" 4.0e-3 fit.Fit.wfix;
      check_close ~eps:1e-9 "wsel" 5.4e-3 fit.Fit.wsel;
      check_close ~eps:1e-9 "perfect correlation" 1.0 fit.Fit.correlation

let test_fit_wrep_needs_degrees () =
  Alcotest.(check bool) "single degree rejected" true
    (Result.is_error (Fit.fit_wrep ~power:1.0 [| (3, 0.1); (3, 0.2) |]))

let test_mean_seconds_to_mflop () =
  Alcotest.(check (option (float 1e-9))) "converted" (Some 14.6)
    (Fit.mean_seconds_to_mflop ~power:730.0 [| 0.01; 0.03 |]);
  Alcotest.(check (option (float 0.0))) "empty" None
    (Fit.mean_seconds_to_mflop ~power:730.0 [||])

let test_star_reply_samples () =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:5 () in
  let samples =
    Fit.star_reply_samples ~params ~platform ~degrees:[ 1; 2; 4 ] ~requests:5 ~wapp:2.0
  in
  Alcotest.(check int) "5 samples per degree" 15 (Array.length samples);
  let degrees = List.sort_uniq Int.compare (List.map fst (Array.to_list samples)) in
  Alcotest.(check (list int)) "degrees covered" [ 1; 2; 4 ] degrees;
  (* every observed duration equals Wrep(d)/w exactly in the simulator *)
  Array.iter
    (fun (d, seconds) ->
      check_close "duration is Wrep(d)/w" (Params.wrep params ~degree:d /. 730.0) seconds)
    samples

let test_star_reply_samples_validation () =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:3 () in
  Alcotest.(check bool) "too few nodes" true
    (match
       Fit.star_reply_samples ~params ~platform ~degrees:[ 5 ] ~requests:1 ~wapp:1.0
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Forecast ---------- *)

module Forecast = Adept_calibration.Forecast

let test_forecast_mean_converges () =
  let rng = Adept_util.Rng.create 7 in
  let true_wapp = 59.77 and power = 730.0 in
  let f = Forecast.create Forecast.Running_mean in
  for _ = 1 to 5000 do
    let seconds =
      Float.max 1e-6
        (Adept_util.Rng.normal rng ~mean:(true_wapp /. power)
           ~stddev:(0.2 *. true_wapp /. power))
    in
    Forecast.observe f ~power ~seconds
  done;
  let estimate = Option.get (Forecast.predict f) in
  Alcotest.(check bool) "within 2% of truth" true
    (Float.abs (estimate -. true_wapp) /. true_wapp < 0.02);
  Alcotest.(check int) "count" 5000 (Forecast.count f)

let test_forecast_ewma_tracks_drift () =
  let f = Forecast.create (Forecast.Ewma 0.3) in
  (* regime change: 10 then 100 MFlop *)
  for _ = 1 to 20 do Forecast.observe_mflop f 10.0 done;
  for _ = 1 to 20 do Forecast.observe_mflop f 100.0 done;
  let ewma = Option.get (Forecast.predict f) in
  let mean_f = Forecast.create Forecast.Running_mean in
  for _ = 1 to 20 do Forecast.observe_mflop mean_f 10.0 done;
  for _ = 1 to 20 do Forecast.observe_mflop mean_f 100.0 done;
  let mean = Option.get (Forecast.predict mean_f) in
  Alcotest.(check bool) "ewma close to new regime" true (ewma > 95.0);
  Alcotest.(check bool) "mean stuck between regimes" true (mean > 50.0 && mean < 60.0)

let test_forecast_median_robust () =
  let f = Forecast.create (Forecast.Windowed_median 9) in
  List.iter (Forecast.observe_mflop f) [ 10.; 11.; 9.; 10.; 1000.; 10.; 11.; 9.; 10. ];
  let m = Option.get (Forecast.predict f) in
  Alcotest.(check bool) "outlier ignored" true (m >= 9.0 && m <= 11.0)

let test_forecast_window_slides () =
  let f = Forecast.create (Forecast.Windowed_median 3) in
  List.iter (Forecast.observe_mflop f) [ 1.0; 1.0; 1.0; 50.0; 50.0; 50.0 ];
  check_close "only the last window counts" 50.0 (Option.get (Forecast.predict f))

let test_forecast_residuals () =
  let f = Forecast.create Forecast.Running_mean in
  Alcotest.(check (option (float 0.0))) "empty predict" None (Forecast.predict f);
  Forecast.observe_mflop f 4.0;
  Alcotest.(check (option (float 0.0))) "single: no stddev" None (Forecast.residual_stddev f);
  Forecast.observe_mflop f 8.0;
  check_close "stddev of {4,8}" (sqrt 8.0) (Option.get (Forecast.residual_stddev f))

let test_forecast_validation () =
  Alcotest.(check bool) "bad alpha" true
    (match Forecast.create (Forecast.Ewma 1.5) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad window" true
    (match Forecast.create (Forecast.Windowed_median 0) with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let f = Forecast.create Forecast.Running_mean in
  Alcotest.(check bool) "bad observation" true
    (match Forecast.observe_mflop f 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Table 3 ---------- *)

let test_table3_reconstruction_exact () =
  match Table3.run ~requests:30 ~reference:params ~node_power:730.0 () with
  | Error e -> Alcotest.fail e
  | Ok measured ->
      let errors = Table3.relative_errors measured ~reference:params in
      List.iter
        (fun (name, err) ->
          Alcotest.(check bool) (name ^ " reconstructed within 1e-6") true (err < 1e-6))
        errors;
      Alcotest.(check bool) "correlation ~1" true
        (measured.Table3.wrep_correlation > 0.999);
      Alcotest.(check int) "all requests observed" 30 measured.Table3.requests_observed

let test_table3_table_renders () =
  match Table3.run ~requests:10 ~fit_degrees:[ 1; 2; 3 ] ~reference:params
          ~node_power:730.0 ()
  with
  | Error e -> Alcotest.fail e
  | Ok measured ->
      let rendered = Adept_util.Table.render (Table3.to_table measured) in
      Alcotest.(check bool) "has agent row" true
        (Astring.String.is_infix ~affix:"Agent" rendered)

let test_table3_validation () =
  Alcotest.(check bool) "zero requests" true
    (Result.is_error (Table3.run ~requests:0 ~reference:params ~node_power:730.0 ()))

let () =
  Alcotest.run "calibration"
    [
      ( "linpack",
        [
          Alcotest.test_case "daxpy" `Quick test_linpack_daxpy_positive;
          Alcotest.test_case "dgemm" `Quick test_linpack_dgemm_positive;
          Alcotest.test_case "validation" `Quick test_linpack_validation;
          Alcotest.test_case "background load" `Quick test_background_load_arithmetic;
        ] );
      ( "fit",
        [
          Alcotest.test_case "wrep synthetic" `Quick test_fit_wrep_synthetic;
          Alcotest.test_case "needs two degrees" `Quick test_fit_wrep_needs_degrees;
          Alcotest.test_case "seconds to mflop" `Quick test_mean_seconds_to_mflop;
          Alcotest.test_case "star reply samples" `Quick test_star_reply_samples;
          Alcotest.test_case "sample validation" `Quick test_star_reply_samples_validation;
        ] );
      ( "forecast",
        [
          Alcotest.test_case "mean converges" `Quick test_forecast_mean_converges;
          Alcotest.test_case "ewma tracks drift" `Quick test_forecast_ewma_tracks_drift;
          Alcotest.test_case "median robust to outliers" `Quick test_forecast_median_robust;
          Alcotest.test_case "window slides" `Quick test_forecast_window_slides;
          Alcotest.test_case "residuals" `Quick test_forecast_residuals;
          Alcotest.test_case "validation" `Quick test_forecast_validation;
        ] );
      ( "table3",
        [
          Alcotest.test_case "exact reconstruction" `Quick test_table3_reconstruction_exact;
          Alcotest.test_case "renders" `Quick test_table3_table_renders;
          Alcotest.test_case "validation" `Quick test_table3_validation;
        ] );
    ]
