(* Tests for Adept_platform: nodes, links, platforms, generators, catalog. *)

open Adept_platform
module Rng = Adept_util.Rng

let node ?(id = 0) ?(name = "n0") ?(power = 100.0) ?cluster () =
  Node.make ~id ~name ~power ?cluster ()

(* ---------- Node ---------- *)

let test_node_accessors () =
  let n = node ~id:3 ~name:"x" ~power:250.0 ~cluster:"lyon" () in
  Alcotest.(check int) "id" 3 (Node.id n);
  Alcotest.(check string) "name" "x" (Node.name n);
  Alcotest.(check (float 0.0)) "power" 250.0 (Node.power n);
  Alcotest.(check string) "cluster" "lyon" (Node.cluster n)

let test_node_validation () =
  Alcotest.check_raises "zero power"
    (Invalid_argument "Node.make: power must be positive and finite") (fun () ->
      ignore (node ~power:0.0 ()));
  Alcotest.check_raises "negative id"
    (Invalid_argument "Node.make: id must be non-negative") (fun () ->
      ignore (node ~id:(-1) ()));
  Alcotest.check_raises "empty name"
    (Invalid_argument "Node.make: name must be non-empty") (fun () ->
      ignore (node ~name:"" ()))

let test_node_with_power () =
  let n = node ~power:100.0 () in
  Alcotest.(check (float 0.0)) "re-measured" 60.0 (Node.power (Node.with_power n 60.0))

let test_node_power_sort () =
  let a = node ~id:0 ~name:"a" ~power:50.0 ()
  and b = node ~id:1 ~name:"b" ~power:100.0 ()
  and c = node ~id:2 ~name:"c" ~power:100.0 () in
  let sorted = List.sort Node.compare_by_power_desc [ a; c; b ] in
  Alcotest.(check (list int)) "power desc, id asc on ties" [ 1; 2; 0 ]
    (List.map Node.id sorted)

(* ---------- Link ---------- *)

let test_link_homogeneous () =
  let l = Link.homogeneous ~bandwidth:100.0 () in
  let a = node ~id:0 ~name:"a" () and b = node ~id:1 ~name:"b" () in
  Alcotest.(check (float 0.0)) "bandwidth" 100.0 (Link.bandwidth l a b);
  Alcotest.(check bool) "homogeneous" true (Link.is_homogeneous l);
  Alcotest.(check (option (float 0.0))) "uniform" (Some 100.0) (Link.uniform_bandwidth l)

let test_link_inter_cluster () =
  let l = Link.inter_cluster ~default:1000.0 [ (("lyon", "orsay"), 50.0) ] in
  let lyon = node ~id:0 ~name:"l" ~cluster:"lyon" ()
  and orsay = node ~id:1 ~name:"o" ~cluster:"orsay" () in
  Alcotest.(check (float 0.0)) "wan" 50.0 (Link.bandwidth l lyon orsay);
  Alcotest.(check (float 0.0)) "wan symmetric" 50.0 (Link.bandwidth l orsay lyon);
  Alcotest.(check (float 0.0)) "lan" 1000.0 (Link.bandwidth l lyon lyon);
  Alcotest.(check bool) "not homogeneous" false (Link.is_homogeneous l);
  Alcotest.(check (option (float 0.0))) "no uniform" None (Link.uniform_bandwidth l)

let test_link_validation () =
  Alcotest.check_raises "zero bandwidth"
    (Invalid_argument "Link: bandwidth must be positive and finite") (fun () ->
      ignore (Link.homogeneous ~bandwidth:0.0 ()));
  Alcotest.check_raises "negative latency"
    (Invalid_argument "Link: latency must be non-negative and finite") (fun () ->
      ignore (Link.homogeneous ~bandwidth:1.0 ~latency:(-0.1) ()))

(* ---------- Platform ---------- *)

let test_platform_of_powers () =
  let p = Platform.of_powers [ 100.0; 200.0; 300.0 ] in
  Alcotest.(check int) "size" 3 (Platform.size p);
  Alcotest.(check (float 0.0)) "node 1 power" 200.0 (Node.power (Platform.node p 1));
  Alcotest.(check (float 0.0)) "total" 600.0 (Platform.total_power p)

let test_platform_dense_ids () =
  let bad = [ node ~id:1 ~name:"a" (); node ~id:0 ~name:"b" () ] in
  Alcotest.(check bool) "non-dense rejected" true
    (match Platform.create bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_platform_duplicate_names () =
  let bad = [ node ~id:0 ~name:"same" (); node ~id:1 ~name:"same" () ] in
  Alcotest.(check bool) "duplicate names rejected" true
    (match Platform.create bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_platform_empty () =
  Alcotest.check_raises "empty" (Invalid_argument "Platform.create: empty node list")
    (fun () -> ignore (Platform.create []))

let test_platform_node_range () =
  let p = Platform.of_powers [ 1.0 ] in
  Alcotest.check_raises "out of range"
    (Invalid_argument "Platform.node: id 5 out of range") (fun () ->
      ignore (Platform.node p 5))

let test_platform_sorted () =
  let p = Platform.of_powers [ 100.0; 300.0; 200.0 ] in
  Alcotest.(check (list int)) "sorted ids" [ 1; 2; 0 ]
    (List.map Node.id (Platform.sorted_by_power_desc p))

let test_platform_homogeneous_check () =
  Alcotest.(check bool) "homogeneous" true
    (Platform.is_homogeneous_compute (Platform.of_powers [ 5.0; 5.0 ]));
  Alcotest.(check bool) "heterogeneous" false
    (Platform.is_homogeneous_compute (Platform.of_powers [ 5.0; 6.0 ]))

let test_platform_subset () =
  let p = Platform.of_powers [ 1.0; 2.0; 3.0 ] in
  Alcotest.(check (list int)) "subset order" [ 2; 0 ]
    (List.map Node.id (Platform.subset p [ 2; 0 ]));
  Alcotest.check_raises "duplicate" (Invalid_argument "Platform.subset: duplicate id 1")
    (fun () -> ignore (Platform.subset p [ 1; 1 ]))

let test_platform_uniform_bandwidth_error () =
  let link = Link.inter_cluster ~default:100.0 [ (("a", "b"), 10.0) ] in
  let nodes =
    [
      Node.make ~id:0 ~name:"x" ~power:1.0 ~cluster:"a" ();
      Node.make ~id:1 ~name:"y" ~power:1.0 ~cluster:"b" ();
    ]
  in
  let p = Platform.create ~link nodes in
  Alcotest.check_raises "heterogeneous connectivity"
    (Invalid_argument "Platform.uniform_bandwidth: heterogeneous connectivity")
    (fun () -> ignore (Platform.uniform_bandwidth p))

(* ---------- Generator ---------- *)

let test_generator_homogeneous () =
  let p = Generator.homogeneous ~n:10 ~power:730.0 () in
  Alcotest.(check int) "size" 10 (Platform.size p);
  Alcotest.(check bool) "homogeneous" true (Platform.is_homogeneous_compute p)

let test_generator_uniform () =
  let rng = Rng.create 1 in
  let p =
    Generator.uniform_heterogeneous ~rng ~n:50 ~power_min:100.0 ~power_max:200.0 ()
  in
  List.iter
    (fun n ->
      Alcotest.(check bool) "power in range" true
        (Node.power n >= 100.0 && Node.power n <= 200.0))
    (Platform.nodes p)

let test_generator_deterministic () =
  let gen seed =
    let rng = Rng.create seed in
    List.map Node.power (Platform.nodes (Generator.grid5000_orsay ~rng ~n:30 ()))
  in
  Alcotest.(check (list (float 0.0))) "same seed, same platform" (gen 5) (gen 5);
  Alcotest.(check bool) "different seed differs" true (gen 5 <> gen 6)

let test_generator_background_levels () =
  let rng = Rng.create 2 in
  let p =
    Generator.background_loaded ~rng ~n:400 ~power:100.0 ~load_fraction:0.6
      ~load_levels:4 ()
  in
  let expected = [ 40.0; 60.0; 80.0; 100.0 ] in
  let powers = List.sort_uniq Float.compare (List.map Node.power (Platform.nodes p)) in
  Alcotest.(check int) "four levels" 4 (List.length powers);
  List.iter2 (fun a b -> Alcotest.(check (float 1e-9)) "level value" a b) expected powers

let test_generator_background_validation () =
  let rng = Rng.create 3 in
  Alcotest.check_raises "bad fraction"
    (Invalid_argument "Generator.background_loaded: load_fraction must be in [0, 1)")
    (fun () ->
      ignore
        (Generator.background_loaded ~rng ~n:4 ~power:1.0 ~load_fraction:1.0
           ~load_levels:2 ()))

let test_generator_two_sites () =
  let rng = Rng.create 4 in
  let p = Generator.two_sites ~rng ~n_orsay:5 ~n_lyon:3 ~wan_bandwidth:25.0 () in
  Alcotest.(check int) "size" 8 (Platform.size p);
  Alcotest.(check (float 0.0)) "wan bandwidth" 25.0 (Platform.bandwidth p 0 5);
  Alcotest.(check (float 0.0)) "lan bandwidth" 1000.0 (Platform.bandwidth p 0 1)

(* ---------- Catalog ---------- *)

let test_catalog_roundtrip () =
  let rng = Rng.create 8 in
  let p = Generator.grid5000_orsay ~rng ~n:12 () in
  match Catalog.of_string (Catalog.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      Alcotest.(check int) "size" (Platform.size p) (Platform.size p');
      List.iter2
        (fun a b -> Alcotest.(check bool) "node equal" true (Node.equal a b))
        (Platform.nodes p) (Platform.nodes p');
      Alcotest.(check (float 0.0)) "bandwidth" (Platform.uniform_bandwidth p)
        (Platform.uniform_bandwidth p')

let test_catalog_inter_cluster_roundtrip () =
  let rng = Rng.create 9 in
  let p = Generator.two_sites ~rng ~n_orsay:4 ~n_lyon:4 ~wan_bandwidth:42.0 () in
  match Catalog.of_string (Catalog.to_string p) with
  | Error e -> Alcotest.fail e
  | Ok p' ->
      Alcotest.(check (float 0.0)) "wan preserved" 42.0 (Platform.bandwidth p' 0 4);
      Alcotest.(check (float 0.0)) "lan preserved" 1000.0 (Platform.bandwidth p' 0 1)

let test_catalog_parse_errors () =
  let check_err text =
    match Catalog.of_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.fail ("should not parse: " ^ text)
  in
  check_err "node name=x power=abc\n";
  check_err "node power=1\n";
  check_err "frobnicate name=x\n";
  check_err "";
  check_err "link homogeneous bandwidth=-5\nnode name=x power=1\n"

let test_catalog_comments_and_blanks () =
  let text = "# a comment\n\nnode name=x power=10 cluster=c\n" in
  match Catalog.of_string text with
  | Error e -> Alcotest.fail e
  | Ok p ->
      Alcotest.(check int) "one node" 1 (Platform.size p);
      Alcotest.(check string) "cluster" "c" (Node.cluster (Platform.node p 0))

let test_catalog_file_io () =
  let p = Generator.homogeneous ~n:3 ~power:10.0 () in
  let path = Filename.temp_file "adept_catalog" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Catalog.save p path;
      match Catalog.load path with
      | Ok p' -> Alcotest.(check int) "roundtrip via file" 3 (Platform.size p')
      | Error e -> Alcotest.fail e)

let test_catalog_load_missing () =
  match Catalog.load "/nonexistent/path/catalog.txt" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "should not load"

(* ---------- properties ---------- *)

let prop_catalog_roundtrip =
  QCheck.Test.make ~count:100 ~name:"catalog round-trips random platforms"
    QCheck.(pair small_int (int_range 1 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p =
        Generator.uniform_heterogeneous ~rng ~n ~power_min:10.0 ~power_max:5000.0 ()
      in
      match Catalog.of_string (Catalog.to_string p) with
      | Error _ -> false
      | Ok p' ->
          Platform.size p = Platform.size p'
          && List.for_all2 Node.equal (Platform.nodes p) (Platform.nodes p'))

let prop_generator_power_positive =
  QCheck.Test.make ~count:100 ~name:"generated powers are positive"
    QCheck.(pair small_int (int_range 1 60))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let p = Generator.grid5000_orsay ~rng ~n () in
      List.for_all (fun node -> Node.power node > 0.0) (Platform.nodes p))

let () =
  Alcotest.run "platform"
    [
      ( "node",
        [
          Alcotest.test_case "accessors" `Quick test_node_accessors;
          Alcotest.test_case "validation" `Quick test_node_validation;
          Alcotest.test_case "with_power" `Quick test_node_with_power;
          Alcotest.test_case "power sort" `Quick test_node_power_sort;
        ] );
      ( "link",
        [
          Alcotest.test_case "homogeneous" `Quick test_link_homogeneous;
          Alcotest.test_case "inter-cluster" `Quick test_link_inter_cluster;
          Alcotest.test_case "validation" `Quick test_link_validation;
        ] );
      ( "platform",
        [
          Alcotest.test_case "of_powers" `Quick test_platform_of_powers;
          Alcotest.test_case "dense ids" `Quick test_platform_dense_ids;
          Alcotest.test_case "duplicate names" `Quick test_platform_duplicate_names;
          Alcotest.test_case "empty" `Quick test_platform_empty;
          Alcotest.test_case "node range" `Quick test_platform_node_range;
          Alcotest.test_case "sorted" `Quick test_platform_sorted;
          Alcotest.test_case "homogeneity check" `Quick test_platform_homogeneous_check;
          Alcotest.test_case "subset" `Quick test_platform_subset;
          Alcotest.test_case "uniform bandwidth error" `Quick
            test_platform_uniform_bandwidth_error;
        ] );
      ( "generator",
        [
          Alcotest.test_case "homogeneous" `Quick test_generator_homogeneous;
          Alcotest.test_case "uniform range" `Quick test_generator_uniform;
          Alcotest.test_case "deterministic" `Quick test_generator_deterministic;
          Alcotest.test_case "background levels" `Quick test_generator_background_levels;
          Alcotest.test_case "background validation" `Quick
            test_generator_background_validation;
          Alcotest.test_case "two sites" `Quick test_generator_two_sites;
        ] );
      ( "catalog",
        [
          Alcotest.test_case "roundtrip" `Quick test_catalog_roundtrip;
          Alcotest.test_case "inter-cluster roundtrip" `Quick
            test_catalog_inter_cluster_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_catalog_parse_errors;
          Alcotest.test_case "comments and blanks" `Quick test_catalog_comments_and_blanks;
          Alcotest.test_case "file io" `Quick test_catalog_file_io;
          Alcotest.test_case "missing file" `Quick test_catalog_load_missing;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_catalog_roundtrip; prop_generator_power_positive ] );
    ]
