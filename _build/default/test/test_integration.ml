(* Cross-library integration tests: the full pipelines a user runs. *)

module Params = Adept_model.Params
module Demand = Adept_model.Demand
module Platform = Adept_platform.Platform
module Generator = Adept_platform.Generator
module Catalog = Adept_platform.Catalog
module Tree = Adept_hierarchy.Tree
module Xml = Adept_hierarchy.Xml
module Validate = Adept_hierarchy.Validate
module Scenario = Adept_sim.Scenario
module Rng = Adept_util.Rng

let params = Params.diet_lyon

let dgemm n = Adept_workload.Dgemm.(mflops (make n))

(* Plan on a generated platform, serialize everything, reload, launch in
   the simulator, and check the measurement agrees with the model. *)
let test_full_pipeline () =
  let rng = Rng.create 2024 in
  let platform = Generator.grid5000_orsay ~rng ~n:25 () in
  (* 1. catalog round-trip *)
  let platform =
    match Catalog.of_string (Catalog.to_string platform) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  (* 2. plan *)
  let wapp = dgemm 310 in
  let tree =
    match Adept.Heuristic.plan_tree params ~platform ~wapp ~demand:Demand.unbounded with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "plan validates" true (Validate.is_valid ~platform tree);
  (* 3. hierarchy XML round-trip *)
  let tree =
    match Xml.of_string_on platform (Xml.to_string tree) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  (* 4. GoDIET document and launch *)
  let doc = Adept_godiet.Writer.document platform tree in
  let engine = Adept_sim.Engine.create () in
  let launched =
    match
      Adept_godiet.Launcher.launch_xml ~element_delay:0.0 ~engine ~params ~platform
        (Adept_hierarchy.Xml.to_string
           (match Adept_godiet.Writer.parse_document doc with
           | Ok shape -> shape
           | Error e -> Alcotest.fail e))
    with
    | Ok l -> l
    | Error e -> Alcotest.fail e
  in
  ignore launched;
  (* 5. measure through the scenario driver and compare to Eq. 16 *)
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let scenario =
    Scenario.make ~params ~platform ~client:(Adept_workload.Client.closed_loop job) tree
  in
  let r = Scenario.run_fixed scenario ~clients:80 ~warmup:1.5 ~duration:3.0 in
  let predicted = Adept.Evaluate.rho_on params ~platform ~wapp tree in
  Alcotest.(check bool)
    (Printf.sprintf "measured %.1f within 40%% of predicted %.1f" r.Scenario.throughput
       predicted)
    true
    (r.Scenario.throughput > 0.6 *. predicted && r.Scenario.throughput < 1.1 *. predicted)

(* The planner's ranking of deployments must agree with the simulator's
   ranking at saturation (the paper's core validation claim). *)
let test_model_ranking_matches_simulation () =
  let rng = Rng.create 555 in
  let platform = Generator.grid5000_orsay ~rng ~n:40 () in
  let wapp = dgemm 310 in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let sorted = Platform.sorted_by_power_desc platform in
  let deployments =
    [
      ("star", Result.get_ok (Adept.Baselines.star sorted));
      ("dary3", Result.get_ok (Adept.Baselines.dary ~degree:3 sorted));
      ( "heuristic",
        Result.get_ok
          (Adept.Heuristic.plan_tree params ~platform ~wapp ~demand:Demand.unbounded) );
    ]
  in
  let results =
    List.map
      (fun (name, tree) ->
        let predicted = Adept.Evaluate.rho_on params ~platform ~wapp tree in
        let scenario =
          Scenario.make ~params ~platform
            ~client:(Adept_workload.Client.closed_loop job) tree
        in
        let r = Scenario.run_fixed scenario ~clients:100 ~warmup:1.5 ~duration:3.0 in
        (name, predicted, r.Scenario.throughput))
      deployments
  in
  let best_predicted =
    List.fold_left (fun (bn, bv) (n, p, _) -> if p > bv then (n, p) else (bn, bv))
      ("", 0.0) results
  in
  let best_measured =
    List.fold_left (fun (bn, bv) (n, _, m) -> if m > bv then (n, m) else (bn, bv))
      ("", 0.0) results
  in
  (* Queueing lets near-ties flip order below full saturation, so the
     model's winner must measure within 5% of the measured winner rather
     than match it exactly. *)
  let measured_of name =
    let _, _, m = List.find (fun (n, _, _) -> n = name) results in
    m
  in
  Alcotest.(check bool)
    (Printf.sprintf "model winner %s measures within 5%% of sim winner %s"
       (fst best_predicted) (fst best_measured))
    true
    (measured_of (fst best_predicted) >= 0.95 *. snd best_measured)

(* Demand-bounded planning verified in the simulator: the minimal plan
   really sustains the demanded rate under enough load. *)
let test_demand_plan_sustains_rate () =
  let platform = Generator.grid5000_lyon ~n:40 () in
  let wapp = dgemm 310 in
  let demand = 100.0 in
  let plan =
    match Adept.Heuristic.plan params ~platform ~wapp ~demand:(Demand.rate demand) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  Alcotest.(check bool) "demand met in the model" true plan.Adept.Heuristic.demand_met;
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let scenario =
    Scenario.make ~params ~platform ~client:(Adept_workload.Client.closed_loop job)
      plan.Adept.Heuristic.tree
  in
  let r = Scenario.run_fixed scenario ~clients:60 ~warmup:1.5 ~duration:3.0 in
  Alcotest.(check bool)
    (Printf.sprintf "sustains %.0f req/s (measured %.1f)" demand r.Scenario.throughput)
    true
    (r.Scenario.throughput >= 0.9 *. demand)

(* The same demand check under open-loop load: a Poisson stream at the
   demanded rate must pass through the minimal plan with bounded latency. *)
let test_demand_plan_survives_poisson () =
  let platform = Generator.grid5000_lyon ~n:40 () in
  let wapp = dgemm 310 in
  let demand = 100.0 in
  let plan =
    match Adept.Heuristic.plan params ~platform ~wapp ~demand:(Demand.rate demand) with
    | Ok p -> p
    | Error e -> Alcotest.fail e
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let scenario =
    Scenario.make ~params ~platform ~client:(Adept_workload.Client.closed_loop job)
      plan.Adept.Heuristic.tree
  in
  let r = Scenario.run_open scenario ~rate:demand ~warmup:3.0 ~duration:8.0 in
  Alcotest.(check bool)
    (Printf.sprintf "passes %.0f req/s through (got %.1f)" demand r.Scenario.throughput)
    true
    (Float.abs (r.Scenario.throughput -. demand) /. demand < 0.1);
  let p95 = Option.get r.Scenario.p95_response in
  Alcotest.(check bool) (Printf.sprintf "p95 bounded (%.2fs)" p95) true (p95 < 2.0)

(* Exhaustive oracle vs simulator on a tiny platform: the best tree by
   Eq. 16 is also best (or tied) when actually executed. *)
let test_exhaustive_agrees_with_simulation () =
  let platform =
    Platform.of_powers
      ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ())
      [ 730.0; 600.0; 500.0; 400.0 ]
  in
  let wapp = dgemm 200 in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let best_tree, best_rho =
    match Adept.Exhaustive.optimal params ~platform ~wapp () with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  let scenario =
    Scenario.make ~params ~platform ~client:(Adept_workload.Client.closed_loop job)
      best_tree
  in
  let r = Scenario.run_fixed scenario ~clients:20 ~warmup:1.0 ~duration:3.0 in
  Alcotest.(check bool) "oracle's tree achieves its rho in simulation" true
    (Float.abs (r.Scenario.throughput -. best_rho) /. best_rho < 0.1)

(* Round-robin selection on a heterogeneous star must lose to
   best-prediction (the weak server becomes a convoy under round-robin). *)
let test_selection_policies_ranked () =
  let platform =
    Platform.of_powers
      ~link:(Adept_platform.Link.homogeneous ~bandwidth:1000.0 ())
      [ 730.0; 730.0; 180.0 ]
  in
  let nodes = Platform.nodes platform in
  let tree = Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let measure selection =
    let scenario =
      Scenario.make ~selection ~params ~platform
        ~client:(Adept_workload.Client.closed_loop job) tree
    in
    (Scenario.run_fixed scenario ~clients:30 ~warmup:2.0 ~duration:4.0)
      .Scenario.throughput
  in
  let best = measure Adept_sim.Middleware.Best_prediction in
  let rr = measure Adept_sim.Middleware.Round_robin in
  Alcotest.(check bool)
    (Printf.sprintf "best-prediction (%.1f) beats round-robin (%.1f)" best rr)
    true (best > rr)

(* The heterogeneous-links model validated in the simulator: on a two-site
   platform the WAN-aware planner's choice must also win when executed
   (the simulator charges every message at its own link's bandwidth). *)
let test_multi_cluster_choice_wins_in_simulation () =
  let make_platform () =
    let rng = Rng.create 5 in
    Generator.two_sites ~rng ~n_orsay:16 ~n_lyon:12 ~wan_bandwidth:0.5 ()
  in
  let platform = make_platform () in
  let wapp = dgemm 310 in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let measure tree =
    let scenario =
      Scenario.make ~params ~platform ~client:(Adept_workload.Client.closed_loop job)
        tree
    in
    (Scenario.run_fixed scenario ~clients:120 ~warmup:2.0 ~duration:4.0)
      .Scenario.throughput
  in
  let planned =
    match Adept.Multi_cluster.plan params ~platform ~wapp ~demand:Demand.unbounded with
    | Ok r -> r
    | Error e -> Alcotest.fail e
  in
  (* the rejected arrangement: a WAN-spanning star *)
  let spanning = Result.get_ok (Adept.Baselines.star (Platform.sorted_by_power_desc platform)) in
  let chosen_rate = measure planned.Adept.Multi_cluster.tree in
  let spanning_rate = measure spanning in
  (match planned.Adept.Multi_cluster.arrangement with
  | Adept.Multi_cluster.Single_site _ -> ()
  | Adept.Multi_cluster.Federated _ ->
      Alcotest.fail "0.5 Mbit/s WAN should force a single-site plan");
  Alcotest.(check bool)
    (Printf.sprintf "single-site %.1f beats WAN-spanning star %.1f" chosen_rate
       spanning_rate)
    true (chosen_rate > spanning_rate)

let () =
  Alcotest.run "integration"
    [
      ( "pipelines",
        [
          Alcotest.test_case "catalog -> plan -> xml -> launch -> measure" `Slow
            test_full_pipeline;
          Alcotest.test_case "model ranking matches simulation" `Slow
            test_model_ranking_matches_simulation;
          Alcotest.test_case "demand plan sustains rate" `Slow
            test_demand_plan_sustains_rate;
          Alcotest.test_case "demand plan survives poisson" `Slow
            test_demand_plan_survives_poisson;
          Alcotest.test_case "exhaustive agrees with simulation" `Slow
            test_exhaustive_agrees_with_simulation;
          Alcotest.test_case "selection policies ranked" `Quick
            test_selection_policies_ranked;
          Alcotest.test_case "multi-cluster choice wins in simulation" `Slow
            test_multi_cluster_choice_wins_in_simulation;
        ] );
    ]
