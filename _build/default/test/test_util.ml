(* Unit and property tests for Adept_util. *)

module Rng = Adept_util.Rng
module Stats = Adept_util.Stats
module Table = Adept_util.Table
module Csv = Adept_util.Csv
module Units = Adept_util.Units

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-6) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

(* ---------- Rng ---------- *)

let test_rng_determinism () =
  let a = Rng.create 123 and b = Rng.create 123 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_different_seeds () =
  let a = Rng.create 1 and b = Rng.create 2 in
  Alcotest.(check bool) "different first output" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_copy_independent () =
  let a = Rng.create 9 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  Alcotest.(check int64) "copy continues identically" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_diverges () =
  let a = Rng.create 5 in
  let b = Rng.split a in
  Alcotest.(check bool) "split stream differs" false (Rng.bits64 a = Rng.bits64 b)

let test_rng_int_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    Alcotest.(check bool) "0 <= v < 17" true (v >= 0 && v < 17)
  done

let test_rng_int_invalid () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 11 in
  for _ = 1 to 500 do
    let v = Rng.int_in rng (-3) 4 in
    Alcotest.(check bool) "-3 <= v <= 4" true (v >= -3 && v <= 4)
  done

let test_rng_int_covers_range () =
  let rng = Rng.create 13 in
  let seen = Array.make 5 false in
  for _ = 1 to 500 do
    seen.(Rng.int rng 5) <- true
  done;
  Alcotest.(check bool) "all 5 values appear" true (Array.for_all Fun.id seen)

let test_rng_float_bounds () =
  let rng = Rng.create 21 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    Alcotest.(check bool) "0 <= v < 2.5" true (v >= 0.0 && v < 2.5)
  done

let test_rng_float_mean () =
  let rng = Rng.create 31 in
  let xs = Array.init 20_000 (fun _ -> Rng.float rng 1.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 0.5" true (Float.abs (m -. 0.5) < 0.02)

let test_rng_exponential_mean () =
  let rng = Rng.create 41 in
  let xs = Array.init 20_000 (fun _ -> Rng.exponential rng ~mean:3.0) in
  let m = Stats.mean xs in
  Alcotest.(check bool) "mean near 3" true (Float.abs (m -. 3.0) < 0.15);
  Alcotest.(check bool) "all positive" true (Array.for_all (fun x -> x > 0.0) xs)

let test_rng_normal_moments () =
  let rng = Rng.create 51 in
  let xs = Array.init 20_000 (fun _ -> Rng.normal rng ~mean:10.0 ~stddev:2.0) in
  Alcotest.(check bool) "mean near 10" true (Float.abs (Stats.mean xs -. 10.0) < 0.1);
  Alcotest.(check bool) "stddev near 2" true (Float.abs (Stats.stddev xs -. 2.0) < 0.1)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 61 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort Int.compare sorted;
  Alcotest.(check (array int)) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick_weighted () =
  let rng = Rng.create 71 in
  let counts = Hashtbl.create 3 in
  for _ = 1 to 10_000 do
    let v = Rng.pick_weighted rng [| ("a", 1.0); ("b", 3.0) |] in
    Hashtbl.replace counts v (1 + Option.value ~default:0 (Hashtbl.find_opt counts v))
  done;
  let b = float_of_int (Hashtbl.find counts "b") in
  Alcotest.(check bool) "b drawn ~75%" true (b /. 10_000.0 > 0.7 && b /. 10_000.0 < 0.8)

let test_rng_pick_weighted_errors () =
  let rng = Rng.create 1 in
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Rng.pick_weighted: negative weight") (fun () ->
      ignore (Rng.pick_weighted rng [| ("a", -1.0); ("b", 2.0) |]));
  Alcotest.check_raises "zero weights"
    (Invalid_argument "Rng.pick_weighted: weights sum to zero") (fun () ->
      ignore (Rng.pick_weighted rng [| ("a", 0.0) |]))

(* ---------- Stats ---------- *)

let test_stats_mean () = check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |])

let test_stats_singleton () =
  check_float "variance of singleton" 0.0 (Stats.variance [| 42.0 |])

let test_stats_variance () =
  (* sample variance of 2,4,4,4,5,5,7,9 is 32/7 *)
  check_close "variance" (32.0 /. 7.0)
    (Stats.variance [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |])

let test_stats_min_max () =
  let xs = [| 3.0; -1.0; 7.5; 0.0 |] in
  check_float "min" (-1.0) (Stats.minimum xs);
  check_float "max" 7.5 (Stats.maximum xs)

let test_stats_empty () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats.mean: empty array")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_percentile () =
  let xs = [| 1.0; 2.0; 3.0; 4.0; 5.0 |] in
  check_float "median" 3.0 (Stats.median xs);
  check_float "p0" 1.0 (Stats.percentile xs 0.0);
  check_float "p100" 5.0 (Stats.percentile xs 100.0);
  check_float "p25" 2.0 (Stats.percentile xs 25.0)

let test_stats_percentile_interpolates () =
  check_float "p50 of two" 1.5 (Stats.percentile [| 1.0; 2.0 |] 50.0)

let test_stats_regression_exact () =
  let samples = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, (3.0 *. x) +. 2.0))
  in
  let fit = Stats.linear_regression samples in
  check_close "slope" 3.0 fit.Stats.slope;
  check_close "intercept" 2.0 fit.Stats.intercept;
  check_close "r" 1.0 fit.Stats.r

let test_stats_regression_negative_r () =
  let samples = Array.init 10 (fun i ->
      let x = float_of_int i in
      (x, 5.0 -. (2.0 *. x)))
  in
  let fit = Stats.linear_regression samples in
  check_close "r = -1" (-1.0) fit.Stats.r

let test_stats_regression_errors () =
  Alcotest.check_raises "one sample"
    (Invalid_argument "Stats.linear_regression: need at least two samples") (fun () ->
      ignore (Stats.linear_regression [| (1.0, 1.0) |]));
  Alcotest.check_raises "zero x variance"
    (Invalid_argument "Stats.linear_regression: zero x variance") (fun () ->
      ignore (Stats.linear_regression [| (1.0, 1.0); (1.0, 2.0) |]))

let test_stats_kahan_sum () =
  (* naive summation loses the small terms against the big one *)
  let xs = Array.make 10_001 1e-8 in
  xs.(0) <- 1e8;
  check_close ~eps:1e-12 "compensated" (1e8 +. 1e-4) (Stats.sum xs)

let test_stats_summary () =
  let s = Stats.summarize [| 1.0; 2.0; 3.0 |] in
  Alcotest.(check int) "n" 3 s.Stats.n;
  check_float "mean" 2.0 s.Stats.smean

let test_stats_ci () =
  let m, half = Stats.confidence_interval_95 (Array.make 100 5.0) in
  check_float "mean" 5.0 m;
  check_float "zero width for constant data" 0.0 half

(* ---------- Table ---------- *)

let test_table_render () =
  let t = Table.create [ "name"; "value" ] in
  let t = Table.add_row t [ "x"; "1" ] in
  let rendered = Table.render t in
  Alcotest.(check bool) "contains header" true
    (Astring.String.is_infix ~affix:"name" rendered)

let test_table_arity () =
  let t = Table.create [ "a"; "b" ] in
  Alcotest.check_raises "arity" (Invalid_argument "Table.add_row: arity mismatch")
    (fun () -> ignore (Table.add_row t [ "only-one" ]))

let test_table_alignment_width () =
  let t = Table.create [ "h" ] in
  let t = Table.add_row t [ "wide-cell-content" ] in
  let lines = String.split_on_char '\n' (Table.render t) in
  let widths = List.filter_map (fun l -> if l = "" then None else Some (String.length l)) lines in
  match widths with
  | [] -> Alcotest.fail "no lines"
  | w :: rest -> List.iter (fun w' -> Alcotest.(check int) "constant width" w w') rest

let test_table_cells () =
  Alcotest.(check string) "float" "3.14" (Table.cell_float 3.14159);
  Alcotest.(check string) "percent" "89.0%" (Table.cell_percent 0.89);
  Alcotest.(check bool) "tiny goes scientific" true
    (Astring.String.is_infix ~affix:"e-" (Table.cell_float 1e-5))

let test_table_separator () =
  let t = Table.create [ "a" ] in
  let t = Table.add_row t [ "1" ] in
  let t = Table.add_separator t in
  let t = Table.add_row t [ "2" ] in
  let rendered = Table.render t in
  let rules =
    List.length
      (List.filter
         (fun l -> String.length l > 0 && l.[0] = '+')
         (String.split_on_char '\n' rendered))
  in
  Alcotest.(check int) "four rules" 4 rules

(* ---------- Csv ---------- *)

let test_csv_basic () =
  let c = Csv.create [ "a"; "b" ] in
  let c = Csv.add_row c [ "1"; "2" ] in
  Alcotest.(check string) "render" "a,b\n1,2\n" (Csv.to_string c)

let test_csv_quoting () =
  let c = Csv.create [ "x" ] in
  let c = Csv.add_row c [ "has,comma" ] in
  let c = Csv.add_row c [ "has\"quote" ] in
  let text = Csv.to_string c in
  Alcotest.(check bool) "comma quoted" true
    (Astring.String.is_infix ~affix:"\"has,comma\"" text);
  Alcotest.(check bool) "quote doubled" true
    (Astring.String.is_infix ~affix:"\"has\"\"quote\"" text)

let test_csv_floats_roundtrip () =
  let v = 0.1 +. 0.2 in
  let c = Csv.add_floats (Csv.create [ "v" ]) [ v ] in
  let line = List.nth (String.split_on_char '\n' (Csv.to_string c)) 1 in
  check_float "17g round-trips" v (float_of_string line)

let test_csv_arity () =
  Alcotest.check_raises "arity" (Invalid_argument "Csv.add_row: arity mismatch")
    (fun () -> ignore (Csv.add_row (Csv.create [ "a" ]) [ "1"; "2" ]))

(* ---------- Units ---------- *)

let test_units_conversions () =
  check_float "mflop" 1.0 (Units.mflop_of_flop 1e6);
  check_float "roundtrip" 3.5 (Units.mflop_of_flop (Units.flop_of_mflop 3.5));
  check_float "mbit of 125000 bytes" 1.0 (Units.mbit_of_byte 125_000.0);
  check_float "byte roundtrip" 2.0 (Units.mbit_of_byte (Units.byte_of_mbit 2.0))

let test_units_times () =
  check_float "compute time" 2.0 (Units.seconds ~w:1460.0 ~power:730.0);
  check_float "transfer time" 0.05 (Units.transfer_seconds ~size:5.0 ~bandwidth:100.0)

let test_units_errors () =
  Alcotest.check_raises "zero power"
    (Invalid_argument "Units.seconds: power must be positive") (fun () ->
      ignore (Units.seconds ~w:1.0 ~power:0.0))

(* ---------- qcheck properties ---------- *)

let prop_rng_int_in_range =
  QCheck.Test.make ~count:500 ~name:"Rng.int always within bound"
    QCheck.(pair small_int (int_bound 1000))
    (fun (seed, bound) ->
      let bound = bound + 1 in
      let rng = Rng.create seed in
      let v = Rng.int rng bound in
      v >= 0 && v < bound)

let prop_percentile_between_min_max =
  QCheck.Test.make ~count:300 ~name:"percentile within [min, max]"
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.0)) (float_bound_inclusive 100.0))
    (fun (xs, p) ->
      let xs = Array.of_list xs in
      let v = Stats.percentile xs p in
      v >= Stats.minimum xs -. 1e-9 && v <= Stats.maximum xs +. 1e-9)

let prop_regression_recovers_line =
  QCheck.Test.make ~count:200 ~name:"regression recovers synthetic line"
    QCheck.(triple (float_range (-5.0) 5.0) (float_range (-10.0) 10.0) small_int)
    (fun (slope, intercept, n) ->
      let n = max 3 (n mod 30) in
      let samples =
        Array.init n (fun i ->
            let x = float_of_int i in
            (x, (slope *. x) +. intercept))
      in
      let fit = Stats.linear_regression samples in
      Float.abs (fit.Stats.slope -. slope) < 1e-6
      && Float.abs (fit.Stats.intercept -. intercept) < 1e-6)

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_rng_int_in_range; prop_percentile_between_min_max; prop_regression_recovers_line ]

let () =
  Alcotest.run "util"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "different seeds" `Quick test_rng_different_seeds;
          Alcotest.test_case "copy is independent" `Quick test_rng_copy_independent;
          Alcotest.test_case "split diverges" `Quick test_rng_split_diverges;
          Alcotest.test_case "int bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int invalid bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "int_in bounds" `Quick test_rng_int_in;
          Alcotest.test_case "int covers range" `Quick test_rng_int_covers_range;
          Alcotest.test_case "float bounds" `Quick test_rng_float_bounds;
          Alcotest.test_case "float mean" `Quick test_rng_float_mean;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "shuffle permutes" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick_weighted proportions" `Quick test_rng_pick_weighted;
          Alcotest.test_case "pick_weighted errors" `Quick test_rng_pick_weighted_errors;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean" `Quick test_stats_mean;
          Alcotest.test_case "singleton variance" `Quick test_stats_singleton;
          Alcotest.test_case "variance" `Quick test_stats_variance;
          Alcotest.test_case "min/max" `Quick test_stats_min_max;
          Alcotest.test_case "empty raises" `Quick test_stats_empty;
          Alcotest.test_case "percentiles" `Quick test_stats_percentile;
          Alcotest.test_case "percentile interpolation" `Quick test_stats_percentile_interpolates;
          Alcotest.test_case "regression exact" `Quick test_stats_regression_exact;
          Alcotest.test_case "regression r=-1" `Quick test_stats_regression_negative_r;
          Alcotest.test_case "regression errors" `Quick test_stats_regression_errors;
          Alcotest.test_case "kahan sum" `Quick test_stats_kahan_sum;
          Alcotest.test_case "summary" `Quick test_stats_summary;
          Alcotest.test_case "confidence interval" `Quick test_stats_ci;
        ] );
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "arity" `Quick test_table_arity;
          Alcotest.test_case "aligned widths" `Quick test_table_alignment_width;
          Alcotest.test_case "cell formatting" `Quick test_table_cells;
          Alcotest.test_case "separator" `Quick test_table_separator;
        ] );
      ( "csv",
        [
          Alcotest.test_case "basic" `Quick test_csv_basic;
          Alcotest.test_case "quoting" `Quick test_csv_quoting;
          Alcotest.test_case "float roundtrip" `Quick test_csv_floats_roundtrip;
          Alcotest.test_case "arity" `Quick test_csv_arity;
        ] );
      ( "units",
        [
          Alcotest.test_case "conversions" `Quick test_units_conversions;
          Alcotest.test_case "times" `Quick test_units_times;
          Alcotest.test_case "errors" `Quick test_units_errors;
        ] );
      ("properties", qcheck_tests);
    ]
