(* Tests for Adept_workload: DGEMM model, jobs, mixes, clients. *)

module Dgemm = Adept_workload.Dgemm
module Job = Adept_workload.Job
module Mix = Adept_workload.Mix
module Client = Adept_workload.Client
module Rng = Adept_util.Rng

let check_close ?(eps = 1e-9) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

let test_dgemm_flops () =
  let d = Dgemm.make 10 in
  check_close "2n^3 + 2n^2" 2200.0 (Dgemm.flops d);
  check_close "mflops" 2.2e-3 (Dgemm.mflops d)

let test_dgemm_large () =
  check_close "dgemm 1000" (2e9 +. 2e6) (Dgemm.flops (Dgemm.make 1000))

let test_dgemm_validation () =
  Alcotest.check_raises "zero order" (Invalid_argument "Dgemm.make: order must be positive")
    (fun () -> ignore (Dgemm.make 0))

let test_dgemm_paper_sizes () =
  Alcotest.(check (list int)) "sizes" [ 10; 100; 200; 310; 1000 ]
    (List.map Dgemm.order Dgemm.sizes_used_in_paper)

let test_job_of_dgemm () =
  let j = Job.of_dgemm (Dgemm.make 310) in
  Alcotest.(check string) "name" "dgemm-310" (Job.app j);
  check_close "wapp" (Dgemm.mflops (Dgemm.make 310)) (Job.wapp j)

let test_job_validation () =
  Alcotest.(check bool) "zero wapp" true
    (match Job.make ~app:"x" ~wapp:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "empty name" true
    (match Job.make ~app:"" ~wapp:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_mix_normalizes () =
  let a = Job.make ~app:"a" ~wapp:1.0 and b = Job.make ~app:"b" ~wapp:3.0 in
  let m = Mix.weighted [ (a, 2.0); (b, 6.0) ] in
  let weights = List.map snd (Mix.jobs m) in
  check_close "sums to 1" 1.0 (List.fold_left ( +. ) 0.0 weights);
  check_close "first weight" 0.25 (List.nth weights 0)

let test_mix_expected_wapp () =
  let a = Job.make ~app:"a" ~wapp:1.0 and b = Job.make ~app:"b" ~wapp:3.0 in
  let m = Mix.weighted [ (a, 1.0); (b, 1.0) ] in
  check_close "arithmetic" 2.0 (Mix.expected_wapp m);
  (* harmonic: 1 / (0.5/1 + 0.5/3) = 1.5 *)
  check_close "harmonic" 1.5 (Mix.harmonic_expected_wapp m)

let test_mix_single () =
  let j = Job.make ~app:"x" ~wapp:5.0 in
  let m = Mix.single j in
  check_close "expected = wapp" 5.0 (Mix.expected_wapp m);
  check_close "harmonic = wapp" 5.0 (Mix.harmonic_expected_wapp m)

let test_mix_draw_distribution () =
  let a = Job.make ~app:"a" ~wapp:1.0 and b = Job.make ~app:"b" ~wapp:2.0 in
  let m = Mix.weighted [ (a, 1.0); (b, 9.0) ] in
  let rng = Rng.create 17 in
  let b_count = ref 0 in
  for _ = 1 to 10_000 do
    if Job.app (Mix.draw m rng) = "b" then incr b_count
  done;
  let frac = float_of_int !b_count /. 10_000.0 in
  Alcotest.(check bool) "b around 90%" true (frac > 0.87 && frac < 0.93)

let test_mix_validation () =
  Alcotest.(check bool) "empty mix" true
    (match Mix.weighted [] with exception Invalid_argument _ -> true | _ -> false);
  let j = Job.make ~app:"x" ~wapp:1.0 in
  Alcotest.(check bool) "zero weight" true
    (match Mix.weighted [ (j, 0.0) ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_client () =
  let j = Job.make ~app:"x" ~wapp:1.0 in
  let c = Client.closed_loop j in
  check_close "zero think time" 0.0 (Client.think_time c);
  let c2 = Client.make ~think_time:0.5 (Mix.single j) in
  check_close "think time" 0.5 (Client.think_time c2);
  Alcotest.(check bool) "negative think time" true
    (match Client.make ~think_time:(-1.0) (Mix.single j) with
    | exception Invalid_argument _ -> true
    | _ -> false)

let prop_dgemm_monotone =
  QCheck.Test.make ~count:200 ~name:"dgemm flops strictly increase with order"
    QCheck.(int_range 1 2000)
    (fun n -> Dgemm.flops (Dgemm.make (n + 1)) > Dgemm.flops (Dgemm.make n))

let prop_mix_harmonic_le_arithmetic =
  QCheck.Test.make ~count:200 ~name:"harmonic mean wapp <= arithmetic mean wapp"
    QCheck.(list_of_size Gen.(1 -- 8) (pair (float_range 0.1 100.0) (float_range 0.1 10.0)))
    (fun entries ->
      let jobs =
        List.mapi
          (fun i (wapp, weight) ->
            (Job.make ~app:(Printf.sprintf "j%d" i) ~wapp, weight))
          entries
      in
      let m = Mix.weighted jobs in
      Mix.harmonic_expected_wapp m <= Mix.expected_wapp m +. 1e-9)

let () =
  Alcotest.run "workload"
    [
      ( "dgemm",
        [
          Alcotest.test_case "flops" `Quick test_dgemm_flops;
          Alcotest.test_case "large" `Quick test_dgemm_large;
          Alcotest.test_case "validation" `Quick test_dgemm_validation;
          Alcotest.test_case "paper sizes" `Quick test_dgemm_paper_sizes;
        ] );
      ( "job",
        [
          Alcotest.test_case "of_dgemm" `Quick test_job_of_dgemm;
          Alcotest.test_case "validation" `Quick test_job_validation;
        ] );
      ( "mix",
        [
          Alcotest.test_case "normalizes" `Quick test_mix_normalizes;
          Alcotest.test_case "expected wapp" `Quick test_mix_expected_wapp;
          Alcotest.test_case "single" `Quick test_mix_single;
          Alcotest.test_case "draw distribution" `Quick test_mix_draw_distribution;
          Alcotest.test_case "validation" `Quick test_mix_validation;
        ] );
      ("client", [ Alcotest.test_case "construction" `Quick test_client ]);
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [ prop_dgemm_monotone; prop_mix_harmonic_le_arithmetic ] );
    ]
