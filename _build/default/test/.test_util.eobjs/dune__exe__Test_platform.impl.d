test/test_platform.ml: Adept_platform Adept_util Alcotest Catalog Filename Float Fun Generator Link List Node Platform QCheck QCheck_alcotest Sys
