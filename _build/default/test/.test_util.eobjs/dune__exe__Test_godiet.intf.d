test/test_godiet.mli:
