test/test_workload.ml: Adept_util Adept_workload Alcotest Float Gen List Printf QCheck QCheck_alcotest
