test/test_godiet.ml: Adept_godiet Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Alcotest Astring List Option Printf Result
