test/test_model.ml: Adept_model Alcotest Float List QCheck QCheck_alcotest
