test/test_calibration.mli:
