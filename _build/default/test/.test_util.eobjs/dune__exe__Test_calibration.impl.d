test/test_calibration.ml: Adept_calibration Adept_model Adept_platform Adept_util Alcotest Array Astring Float Int List Option Result
