test/test_experiments.ml: Adept_calibration Adept_experiments Alcotest Array Astring Filename Float Fun List Printf String Sys
