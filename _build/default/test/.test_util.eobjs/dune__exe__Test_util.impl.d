test/test_util.ml: Adept_util Alcotest Array Astring Float Fun Gen Hashtbl Int List Option QCheck QCheck_alcotest String
