test/test_sim.ml: Adept Adept_hierarchy Adept_model Adept_platform Adept_sim Adept_util Adept_workload Alcotest Array Float Int List Option Printf QCheck QCheck_alcotest
