(* The full deployment pipeline, end to end:

     plan -> GoDIET XML document -> parse back -> launch on the simulated
     grid -> drive load -> compare against the plan's prediction.

   This is what the paper's toolchain did with real machines: the heuristic
   wrote an XML file, GoDIET deployed it over ssh, and clients hammered it.

     dune exec examples/godiet_pipeline.exe *)

let () =
  let params = Adept_model.Params.diet_lyon in
  let rng = Adept_util.Rng.create 3 in
  let platform = Adept_platform.Generator.grid5000_orsay ~rng ~n:30 () in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let wapp = Adept_workload.Job.wapp job in

  (* 1. Plan. *)
  let tree =
    Result.get_ok
      (Adept.Heuristic.plan_tree params ~platform ~wapp
         ~demand:Adept_model.Demand.unbounded)
  in
  Printf.printf "planned: %s\n" (Adept_hierarchy.Metrics.describe tree);

  (* 2. Emit the deployment document (write_xml). *)
  let document = Adept_godiet.Writer.document platform tree in
  Printf.printf "document: %d bytes of GoDIET XML\n" (String.length document);

  (* 3. Parse it back and build the launch plan. *)
  let parsed =
    match Adept_godiet.Writer.parse_document document with
    | Ok shape -> (
        match
          Adept_hierarchy.Xml.of_string_on platform (Adept_hierarchy.Xml.to_string shape)
        with
        | Ok t -> t
        | Error e -> failwith e)
    | Error e -> failwith e
  in
  assert (Adept_hierarchy.Tree.equal parsed tree);
  let plan = Result.get_ok (Adept_godiet.Plan.of_tree parsed) in
  Printf.printf "launch order: %d elements, master on %s\n"
    (List.length (Adept_godiet.Plan.launch_order plan))
    (Adept_platform.Node.name (Adept_godiet.Plan.master plan).Adept_godiet.Plan.host);

  (* 4. Launch on the simulator and drive closed-loop clients. *)
  let engine = Adept_sim.Engine.create () in
  let launched =
    Adept_godiet.Launcher.launch ~element_delay:0.5 ~engine ~params ~platform plan
  in
  Printf.printf "hierarchy up at t=%.1fs (simulated)\n"
    launched.Adept_godiet.Launcher.ready_at;
  let middleware = launched.Adept_godiet.Launcher.middleware in
  let ready = launched.Adept_godiet.Launcher.ready_at in
  (* One client per second for the first minute of load, as in Section 5.1;
     measure a steady window after the ramp. *)
  let measure_from = ready +. 3.0 in
  let horizon = ready +. 10.0 in
  let completed = ref 0 in
  let rec client_loop () =
    if Adept_sim.Engine.now engine < horizon then
      Adept_sim.Middleware.submit middleware ~wapp
        ~on_scheduled:(fun ~server ->
          Adept_sim.Middleware.request_service middleware ~server ~wapp
            ~on_done:(fun () ->
              if Adept_sim.Engine.now engine >= measure_from then incr completed;
              client_loop ())
            ())
        ()
  in
  for i = 0 to 59 do
    Adept_sim.Engine.schedule_at engine
      ~time:(ready +. (0.05 *. float_of_int i))
      client_loop
  done;
  ignore (Adept_sim.Engine.run ~until:horizon engine);
  let predicted = Adept.Evaluate.rho_on params ~platform ~wapp tree in
  Printf.printf "measured %.1f req/s at steady state (model predicts %.1f)\n"
    (float_of_int !completed /. (horizon -. measure_from))
    predicted
