(* Self-healing deployments: the online redeployment controller.

   The planner decides where agents and servers go before the run; the
   controller watches the deployment afterwards.  This walkthrough runs
   the same unlucky day three times — a middle agent dies for good at
   t=1s, orphaning its two servers, while transient crashes churn the
   remaining servers — under each supervision policy:

     off         monitor only, never replan
     eager       replan on the first degraded sample, no guards
     hysteresis  hold time, cooldown and a minimum predicted gain

     dune exec examples/self_healing.exe *)

module Controller = Adept_sim.Controller
module Faults = Adept_sim.Faults
module Scenario = Adept_sim.Scenario
module Tree = Adept_hierarchy.Tree

let params = Adept_model.Params.diet_lyon

let policy_config policy =
  let mk =
    Controller.config ~strategy:Adept.Planner.Heuristic ~sample_period:0.25
      ~window:1.0 ~threshold:0.68 ~restart_latency:1.25 ~state_mbit:1.0
      ~max_replans:8
  in
  let r =
    match policy with
    | Controller.Off -> mk Controller.Off
    | Controller.Eager -> mk ~min_gain:0.0 Controller.Eager
    | Controller.Hysteresis ->
        mk ~hold_time:1.0 ~cooldown:2.5 ~min_gain:0.05 Controller.Hysteresis
  in
  match r with Ok c -> c | Error e -> failwith (Adept.Error.to_string e)

let () =
  let platform = Adept_platform.Generator.grid5000_lyon ~n:7 () in
  let node = Adept_platform.Platform.node platform in
  (* Root agent 0 fans out to middle agents 1 and 2, two servers each. *)
  let tree =
    Tree.agent (node 0)
      [
        Tree.agent (node 1) [ Tree.server (node 3); Tree.server (node 4) ];
        Tree.agent (node 2) [ Tree.server (node 5); Tree.server (node 6) ];
      ]
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let horizon = 16.0 in
  let faults () =
    (* Agent 1 never comes back; the middleware's failover prunes its whole
       subtree, and only a redeployment can reattach the survivors.  The
       servers additionally crash and recover at 0.5/s with a 0.5s MTTR —
       damage the failover absorbs on its own. *)
    Faults.make_exn ()
    |> Faults.crash ~node:1 ~at:1.0
    |> Faults.seeded_crashes
         ~rng:(Adept_util.Rng.create 11)
         ~nodes:[ 3; 4; 5; 6 ] ~rate:0.5 ~mttr:0.5 ~horizon
  in
  Printf.printf "%-12s %12s %10s %8s %15s %13s\n" "policy" "rho (req/s)"
    "completed" "replans" "migration lost" "degraded (s)";
  List.iter
    (fun policy ->
      let scenario =
        Scenario.make ~faults:(faults ())
          ~controller:(policy_config policy) ~seed:42 ~params ~platform
          ~client:(Adept_workload.Client.closed_loop job) tree
      in
      let r = Scenario.run_fixed scenario ~clients:24 ~warmup:1.0 ~duration:15.0 in
      Printf.printf "%-12s %12.2f %10d %8d %15d %13.2f\n"
        (Controller.policy_name policy)
        r.Scenario.throughput r.Scenario.completed_total
        (List.length r.Scenario.replans)
        r.Scenario.migration_lost r.Scenario.degraded_seconds;
      List.iter
        (fun rec_ -> Format.printf "  %a@." Controller.pp_record rec_)
        r.Scenario.replans)
    [ Controller.Off; Controller.Eager; Controller.Hysteresis ]
