(* Quickstart: plan a deployment for a small heterogeneous cluster and
   print everything a user needs to launch it.

     dune exec examples/quickstart.exe *)

let () =
  (* 1. Describe the platform: 24 nodes, heterogeneous power, 1 Gbit/s LAN. *)
  let rng = Adept_util.Rng.create 7 in
  let platform =
    Adept_platform.Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n:24
      ~power_min:300.0 ~power_max:900.0 ()
  in
  Format.printf "platform: %a@.@." Adept_platform.Platform.pp_summary platform;

  (* 2. Describe the workload: DGEMM 310x310 requests, as in the paper. *)
  let dgemm = Adept_workload.Dgemm.make 310 in
  let wapp = Adept_workload.Dgemm.mflops dgemm in
  Format.printf "workload: %a = %.1f MFlop per request@.@." Adept_workload.Dgemm.pp dgemm
    wapp;

  (* 3. Plan with the paper's heuristic (Table 3 middleware constants). *)
  let params = Adept_model.Params.diet_lyon in
  let plan =
    match
      Adept.Planner.run Adept.Planner.Heuristic params ~platform ~wapp
        ~demand:Adept_model.Demand.unbounded
    with
    | Ok plan -> plan
    | Error e -> failwith (Adept.Error.to_string e)
  in
  Format.printf "plan: %a@.@." Adept.Planner.pp_plan plan;
  Format.printf "%s@.@."
    (Adept.Evaluate.report params
       ~bandwidth:(Adept_platform.Platform.uniform_bandwidth platform)
       ~wapp plan.Adept.Planner.tree);

  (* 4. Print the hierarchy and its GoDIET XML. *)
  Format.printf "hierarchy:@.%a@." Adept_hierarchy.Tree.pp plan.Adept.Planner.tree;
  print_string (Adept_hierarchy.Xml.to_string plan.Adept.Planner.tree)
