(* Observability: run an instrumented simulation and set the measured
   per-element costs against the model's predictions (Eqs. 1-5 and the
   Eq. 16 throughput), then export the metrics for external tooling.

     dune exec examples/observability.exe *)

let () =
  (* 1. A small homogeneous cluster and the paper's DGEMM workload. *)
  let platform = Adept_platform.Generator.homogeneous ~bandwidth:1000.0 ~n:12 ~power:730.0 () in
  let dgemm = Adept_workload.Dgemm.make 310 in
  let wapp = Adept_workload.Dgemm.mflops dgemm in
  let params = Adept_model.Params.diet_lyon in

  (* 2. Plan a deployment. *)
  let plan =
    match
      Adept.Planner.run Adept.Planner.Heuristic params ~platform ~wapp
        ~demand:Adept_model.Demand.unbounded
    with
    | Ok plan -> plan
    | Error e -> failwith (Adept.Error.to_string e)
  in
  let tree = plan.Adept.Planner.tree in
  Format.printf "plan: %a@.@." Adept.Planner.pp_plan plan;

  (* 3. Simulate with a metrics registry attached.  The instrumentation
     only observes work the simulator performs anyway, so the run is
     bit-identical with or without it. *)
  let registry = Adept_obs.Registry.create () in
  let job = Adept_workload.Job.of_dgemm dgemm in
  let scenario =
    Adept_sim.Scenario.make ~seed:7 ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job)
      tree
  in
  let result =
    Adept_sim.Scenario.run_fixed ~registry scenario ~clients:40 ~warmup:2.0
      ~duration:4.0
  in
  Printf.printf "simulated: %.2f req/s (model %.2f)\n\n"
    result.Adept_sim.Scenario.throughput plan.Adept.Planner.predicted_rho;

  (* 4. The model-vs-measured report: per-element compute components and
     throughput, with relative deviations.  The same table backs the
     `adept observe` subcommand and the CI fidelity gate. *)
  let report = Adept_obs.Report.build ~registry ~params ~platform ~wapp ~tree in
  print_string (Adept_obs.Report.render report);
  print_newline ();

  (* 5. Export for external tooling: Prometheus text, JSON lines, CSV. *)
  let families = Adept_obs.Registry.snapshot registry in
  Out_channel.with_open_text "observability_metrics.prom" (fun oc ->
      Out_channel.output_string oc (Adept_obs.Export.prometheus families));
  print_endline "wrote observability_metrics.prom";
  Printf.printf "metrics: %d series across %d families; jsonl is %d bytes\n\n"
    (Adept_obs.Registry.num_series registry)
    (List.length families)
    (String.length (Adept_obs.Export.jsonl families));

  (* 6. Per-request causal traces: re-run with a request-trace store
     attached.  Sampled requests record their Figure-1 span chain; the
     parent walk back from the last span is the critical path, and
     cross-trace attribution names the measured bottleneck — checked
     against which side of Eq. 16 the model says binds.  The same
     pipeline backs the `adept trace` subcommand and its CI gate. *)
  let store = Adept_obs.Request_trace.create ~max_traces:8 () in
  let registry2 = Adept_obs.Registry.create () in
  let _ : Adept_sim.Scenario.run_result =
    Adept_sim.Scenario.run_fixed ~registry:registry2 ~rtrace:store scenario
      ~clients:40 ~warmup:2.0 ~duration:4.0
  in
  let utilization =
    match
      Adept_obs.Registry.find registry2 Adept_obs.Semconv.node_utilization_ratio
    with
    | None -> []
    | Some fam ->
        List.filter_map
          (fun (labels, value) ->
            match
              ( Option.bind
                  (Adept_obs.Label.find labels Adept_obs.Semconv.l_node)
                  int_of_string_opt,
                value )
            with
            | Some id, Adept_obs.Registry.Gauge u -> Some (id, u)
            | _ -> None)
          fam.Adept_obs.Registry.series
  in
  let predicted =
    Adept.Evaluate.bottleneck_element params
      ~bandwidth:(Adept_platform.Platform.uniform_bandwidth platform)
      ~wapp tree
  in
  let attribution =
    Adept_obs.Attribution.build ~store ~tree ~utilization ~predicted ()
  in
  print_string (Adept_obs.Attribution.render attribution);
  (match Adept_obs.Request_trace.exemplars store with
  | [] -> ()
  | slowest :: _ ->
      print_newline ();
      print_string (Adept_obs.Critical_path.render slowest))
