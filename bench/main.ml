(* Benchmark harness.

   Default mode regenerates every table and figure of the paper's
   evaluation (plus the extension studies) at full fidelity and prints
   them as text tables — the reproduction artefact recorded in
   EXPERIMENTS.md.

     dune exec bench/main.exe                 # everything
     dune exec bench/main.exe fig6 table4     # a subset
     dune exec bench/main.exe micro           # Bechamel microbenches
     dune exec bench/main.exe all micro       # both

   The Bechamel suite has one Test.make per paper artefact, timing that
   artefact's deterministic planning/model kernel (simulation-driven
   measurements live in the default mode; iterating them under Bechamel
   would take hours). *)

module Common = Adept_experiments.Common
module Registry = Adept_experiments.Registry
module Demand = Adept_model.Demand
module Sproto = Adept_serve.Protocol
module Scache = Adept_serve.Cache
module Srender = Adept_serve.Render
module Sserver = Adept_serve.Server
module Sclient = Adept_serve.Client
module Sprof = Adept_serve.Prof

let params = Adept_model.Params.diet_lyon

let dgemm n = Adept_workload.Dgemm.(mflops (make n))

(* ---------- paper artefact regeneration ---------- *)

let run_experiments ids =
  let ctx = Common.default_context in
  let selected =
    match ids with
    | [] -> Registry.all
    | ids ->
        List.map
          (fun id ->
            match Registry.find id with
            | Some e -> e
            | None ->
                prerr_endline ("unknown experiment id: " ^ id);
                exit 1)
          ids
  in
  List.iter
    (fun (e : Registry.experiment) ->
      let t0 = Unix.gettimeofday () in
      let report = e.Registry.run ctx in
      print_string (Common.render report);
      Printf.printf "(regenerated in %.1fs)\n\n%!" (Unix.gettimeofday () -. t0))
    selected

(* ---------- Bechamel microbenches: one per table/figure ---------- *)

let lyon n = Adept_platform.Generator.grid5000_lyon ~n ()

let orsay seed n =
  let rng = Adept_util.Rng.create seed in
  Adept_platform.Generator.grid5000_orsay ~rng ~n ()

let bench_table3 =
  (* Table 3's kernel: the Wrep linear fit over star-deployment samples. *)
  let platform = lyon 9 in
  Bechamel.Test.make ~name:"table3/wrep-fit"
    (Bechamel.Staged.stage (fun () ->
         let samples =
           Adept_calibration.Fit.star_reply_samples ~params ~platform
             ~degrees:[ 1; 2; 4; 8 ] ~requests:5 ~wapp:(dgemm 100)
         in
         match Adept_calibration.Fit.fit_wrep ~power:730.0 samples with
         | Ok fit -> ignore fit.Adept_calibration.Fit.wsel
         | Error e -> failwith e))

let bench_fig2_3 =
  (* Figs. 2-3 kernel: Eq. 16 prediction for the two star deployments. *)
  let platform = lyon 3 in
  let nodes = Adept_platform.Platform.nodes platform in
  let star1 = Adept_hierarchy.Tree.star (List.hd nodes) [ List.nth nodes 1 ] in
  let star2 = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  Bechamel.Test.make ~name:"fig2-3/predict"
    (Bechamel.Staged.stage (fun () ->
         ignore (Adept.Evaluate.rho_on params ~platform ~wapp:(dgemm 10) star1);
         ignore (Adept.Evaluate.rho_on params ~platform ~wapp:(dgemm 10) star2)))

let bench_fig4_5 =
  (* Figs. 4-5 kernel: one simulated saturation point of the 2-server star. *)
  let platform = lyon 3 in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let scenario =
    Adept_sim.Scenario.make ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  Bechamel.Test.make ~name:"fig4-5/simulate-point"
    (Bechamel.Staged.stage (fun () ->
         ignore (Adept_sim.Scenario.run_fixed scenario ~clients:10 ~warmup:0.5 ~duration:1.0)))

let bench_table4 =
  (* Table 4 kernel: heuristic + homogeneous degree search on 45 nodes. *)
  let platform = lyon 45 in
  Bechamel.Test.make ~name:"table4/plan-45-nodes"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept.Heuristic.plan params ~platform ~wapp:(dgemm 310)
              ~demand:Demand.unbounded);
         ignore
           (Adept.Homogeneous.plan params ~platform ~wapp:(dgemm 310)
              ~demand:Demand.unbounded)))

let bench_fig6 =
  (* Fig. 6 kernel: the heuristic on the 200-node heterogeneous platform. *)
  let platform = orsay 42 200 in
  Bechamel.Test.make ~name:"fig6/plan-200-nodes"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept.Heuristic.plan params ~platform ~wapp:(dgemm 310)
              ~demand:Demand.unbounded)))

let bench_fig7 =
  (* Fig. 7 kernel: planning the service-limited regime on 200 nodes. *)
  let platform = orsay 42 200 in
  Bechamel.Test.make ~name:"fig7/plan-200-nodes"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept.Heuristic.plan params ~platform ~wapp:(dgemm 1000)
              ~demand:Demand.unbounded)))

let bench_plan_2000 =
  (* scalability of the planner well beyond the paper's 200 nodes *)
  let platform = orsay 1 2000 in
  Bechamel.Test.make ~name:"scale/plan-2000-nodes"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept.Heuristic.plan params ~platform ~wapp:(dgemm 310)
              ~demand:Demand.unbounded)))

let bench_plan_100k =
  (* the pooled planner's headline: Algorithm 1 on 100 000 nodes.  The
     node pool's prefix sums and capacity classes keep each bisection
     probe near-linear, so the whole plan lands in well under a second —
     the pre-pool implementation was quadratic in the candidate scans and
     unusable at this scale. *)
  let platform = lazy (orsay 1 100_000) in
  Bechamel.Test.make ~name:"scale/plan-100k-nodes"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept.Heuristic.plan params ~platform:(Lazy.force platform)
              ~wapp:(dgemm 310) ~demand:Demand.unbounded)))

(* Twin pair: patching a 200-node hierarchy around a dead server versus
   replanning it from scratch — the wall-clock gap the controller's
   incremental-first policy banks on every enactment. *)
let bench_replan_pair =
  let platform = orsay 42 200 in
  let wapp = dgemm 310 in
  let previous =
    match
      Adept.Planner.run Adept.Planner.Heuristic params ~platform ~wapp
        ~demand:Demand.unbounded
    with
    | Ok p -> p.Adept.Planner.tree
    | Error e -> failwith (Adept.Error.to_string e)
  in
  let failed =
    let servers = Adept_hierarchy.Tree.servers previous in
    [ Adept_platform.Node.id (List.nth servers (List.length servers - 1)) ]
  in
  ( Bechamel.Test.make ~name:"replan/incremental-200-nodes"
      (Bechamel.Staged.stage (fun () ->
           match
             Adept.Planner.replan_incremental Adept.Planner.Heuristic params
               ~platform ~wapp ~demand:Demand.unbounded ~failed ~previous ()
           with
           | Ok (_, Adept.Planner.Incremental) -> ()
           | Ok (_, Adept.Planner.Full reason) -> failwith ("fell back: " ^ reason)
           | Error e -> failwith (Adept.Error.to_string e))),
    Bechamel.Test.make ~name:"replan/full-200-nodes"
      (Bechamel.Staged.stage (fun () ->
           match
             Adept.Planner.replan Adept.Planner.Heuristic params ~platform ~wapp
               ~demand:Demand.unbounded ~failed ~reference:previous ()
           with
           | Ok _ -> ()
           | Error e -> failwith (Adept.Error.to_string e))) )

let bench_replan_incremental = fst bench_replan_pair
let bench_replan_full = snd bench_replan_pair

let bench_fault_sweep =
  (* fault-sweep kernel: one simulated point with an active crash/recovery
     schedule — times the overhead of the supervised (timeout/retry)
     request path against bench_fig4_5's fault-free twin. *)
  let platform = lyon 3 in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let faults =
    Adept_sim.Faults.make_exn ()
    |> Adept_sim.Faults.seeded_crashes
         ~rng:(Adept_util.Rng.create 11)
         ~nodes:[ 1; 2 ] ~rate:0.5 ~mttr:0.3 ~horizon:1.5
  in
  let scenario =
    Adept_sim.Scenario.make ~faults ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  Bechamel.Test.make ~name:"fault-sweep/simulate-point"
    (Bechamel.Staged.stage (fun () ->
         ignore (Adept_sim.Scenario.run_fixed scenario ~clients:10 ~warmup:0.5 ~duration:1.0)))

let bench_self_heal =
  (* self-heal kernel: the fault-sweep point with the hysteresis controller
     sampling on top — times the supervision loop plus at most one online
     redeployment against bench_fault_sweep's controller-free twin. *)
  let platform = lyon 4 in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let faults =
    Adept_sim.Faults.make_exn ()
    |> Adept_sim.Faults.crash ~node:1 ~at:0.4
  in
  let controller =
    match
      Adept_sim.Controller.config ~strategy:Adept.Planner.Star ~sample_period:0.1
        ~window:0.5 ~threshold:0.6 ~hold_time:0.2 ~cooldown:0.5 ~min_gain:0.0
        ~max_replans:1 ~restart_latency:0.05 Adept_sim.Controller.Hysteresis
    with
    | Ok cfg -> cfg
    | Error e -> failwith (Adept.Error.to_string e)
  in
  let scenario =
    Adept_sim.Scenario.make ~faults ~controller ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  Bechamel.Test.make ~name:"self-heal/simulate-point"
    (Bechamel.Staged.stage (fun () ->
         ignore (Adept_sim.Scenario.run_fixed scenario ~clients:10 ~warmup:0.5 ~duration:1.0)))

let bench_rollout =
  (* rollout kernel: bench_self_heal's point with the replacement staged
     through a canary generation instead of swapped directly — times the
     split-routing bake window plus the promote migration.  No monitor is
     attached, so no watched alert can fire and the canary always promotes
     at the end of its bake; the kernel measures rollout machinery, not
     alert evaluation (bench_scrape covers that). *)
  let platform = lyon 4 in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let faults =
    Adept_sim.Faults.make_exn () |> Adept_sim.Faults.crash ~node:1 ~at:0.4
  in
  let rollout =
    match
      Adept_sim.Rollout.config ~canary_fraction:0.25 ~bake_window:0.3
        Adept_sim.Rollout.Canary
    with
    | Ok cfg -> cfg
    | Error e -> failwith (Adept.Error.to_string e)
  in
  let controller =
    match
      Adept_sim.Controller.config ~strategy:Adept.Planner.Star
        ~sample_period:0.1 ~window:0.5 ~threshold:0.6 ~hold_time:0.2
        ~cooldown:0.5 ~min_gain:0.0 ~max_replans:1 ~restart_latency:0.05
        ~rollout Adept_sim.Controller.Hysteresis
    with
    | Ok cfg -> cfg
    | Error e -> failwith (Adept.Error.to_string e)
  in
  let scenario =
    Adept_sim.Scenario.make ~faults ~controller ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  Bechamel.Test.make ~name:"rollout/simulate-point"
    (Bechamel.Staged.stage (fun () ->
         ignore
           (Adept_sim.Scenario.run_fixed scenario ~clients:10 ~warmup:0.5
              ~duration:1.0)))

let bench_traced =
  (* fig4-5's point with full observability attached — metrics registry
     plus a rate-1.0 request-trace store — so the bounded overhead of
     per-request causal tracing is visible against its untraced twin. *)
  let platform = lyon 3 in
  let nodes = Adept_platform.Platform.nodes platform in
  let tree = Adept_hierarchy.Tree.star (List.hd nodes) (List.tl nodes) in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let scenario =
    Adept_sim.Scenario.make ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  Bechamel.Test.make ~name:"obs/simulate-point-traced"
    (Bechamel.Staged.stage (fun () ->
         let registry = Adept_obs.Registry.create () in
         let rtrace = Adept_obs.Request_trace.create () in
         ignore
           (Adept_sim.Scenario.run_fixed ~registry ~rtrace scenario ~clients:10
              ~warmup:0.5 ~duration:1.0)))

let bench_scrape =
  (* the monitor's per-tick cost at dashboard scale: one scrape of a
     registry holding ~1k series into a time-series store watching 16 of
     them — what `adept monitor --scrape-interval` pays 4×/simulated
     second.  Setup (registry population) is outside the staged thunk. *)
  let registry = Adept_obs.Registry.create () in
  for shard = 0 to 999 do
    let g =
      Adept_obs.Registry.gauge registry
        ~labels:(Adept_obs.Label.v [ ("shard", string_of_int shard) ])
        "adept_bench_gauge"
    in
    Adept_obs.Gauge.set g (float_of_int shard)
  done;
  let selectors =
    List.init 16 (fun i ->
        Adept_obs.Rule.selector
          ~labels:(Adept_obs.Label.v [ ("shard", string_of_int (i * 61)) ])
          "adept_bench_gauge")
  in
  let store = Adept_obs.Timeseries.create ~retention:10.0 selectors in
  let now = ref 0.0 in
  Bechamel.Test.make ~name:"obs/scrape-1k-series"
    (Bechamel.Staged.stage (fun () ->
         now := !now +. 0.25;
         Adept_obs.Timeseries.scrape store ~registry ~now:!now))

(* The ring-buffer payoff behind Run_stats.completions_in: the loop a
   controller run performs — a steady completion stream with a sliding
   window query every 100 completions.  The naive twin is the pre-ring
   implementation (every completion kept forever, every query a full
   scan), quadratic in run length where the ring stays flat. *)
let window_completions = 20_000
let window_span = 5.0

let bench_window_ring =
  Bechamel.Test.make ~name:"substrate/run-stats-window-ring"
    (Bechamel.Staged.stage (fun () ->
         let stats =
           Adept_sim.Run_stats.create ~retention:(window_span +. 1.0) ()
         in
         let acc = ref 0 in
         for i = 1 to window_completions do
           let time = float_of_int i *. 0.01 in
           Adept_sim.Run_stats.record_issue stats ~time;
           Adept_sim.Run_stats.record_completion stats ~issued_at:time ~time
             ~server:0;
           if i mod 100 = 0 then
             acc :=
               !acc
               + Adept_sim.Run_stats.completions_in stats
                   ~t0:(time -. window_span) ~t1:time
         done;
         ignore !acc))

let bench_window_naive =
  Bechamel.Test.make ~name:"substrate/run-stats-window-naive"
    (Bechamel.Staged.stage (fun () ->
         let times = ref [] in
         let acc = ref 0 in
         for i = 1 to window_completions do
           let time = float_of_int i *. 0.01 in
           times := time :: !times;
           if i mod 100 = 0 then
             acc :=
               !acc
               + List.length
                   (List.filter
                      (fun t -> time -. window_span <= t && t < time)
                      !times)
         done;
         ignore !acc))

let bench_event_queue =
  Bechamel.Test.make ~name:"substrate/event-queue-10k"
    (Bechamel.Staged.stage (fun () ->
         let q = Adept_sim.Event_queue.create () in
         let rng = Adept_util.Rng.create 7 in
         for _ = 1 to 10_000 do
           Adept_sim.Event_queue.add q ~time:(Adept_util.Rng.float rng 100.0) ()
         done;
         let rec drain () =
           match Adept_sim.Event_queue.pop_min q with
           | Some _ -> drain ()
           | None -> ()
         in
         drain ()))

let bench_xml =
  let platform = orsay 42 100 in
  let tree =
    match
      Adept.Heuristic.plan_tree params ~platform ~wapp:(dgemm 310) ~demand:Demand.unbounded
    with
    | Ok t -> t
    | Error e -> failwith e
  in
  Bechamel.Test.make ~name:"substrate/xml-roundtrip-100-nodes"
    (Bechamel.Staged.stage (fun () ->
         match Adept_hierarchy.Xml.of_string (Adept_hierarchy.Xml.to_string tree) with
         | Ok _ -> ()
         | Error e -> failwith e))

(* ---------- serve micros ---------- *)

(* The plan request the serve micros and the closed-loop driver share:
   the CLI's default synthetic platform. *)
let serve_spec =
  Sproto.Synthetic
    { nodes = 50; power = 730.0; bandwidth = 1000.0; heterogeneous = false; seed = 42 }

let serve_plan_params =
  {
    Sproto.spec = serve_spec;
    dgemm = 310;
    demand = None;
    strategy = "heuristic";
    use_cache = true;
  }

let bench_serve_plan_cold =
  (* a cache-missing plan request with the socket excluded: platform
     build + Algorithm 1 + CLI-identical rendering *)
  Bechamel.Test.make ~name:"serve/plan-cold"
    (Bechamel.Staged.stage (fun () ->
         match Srender.plan serve_plan_params with
         | Ok (_text, _rho, _nodes_used) -> ()
         | Error e -> failwith e))

let bench_serve_plan_cached =
  (* the same request answered from the plan-fragment cache: lookup plus
     reply encoding — the fast path a warm server serves at rate *)
  let digest = Sproto.spec_digest serve_spec in
  let wapp = dgemm 310 in
  let cache = Scache.create () in
  let () =
    match Srender.plan serve_plan_params with
    | Ok (text, rho, nodes_used) ->
        Scache.add cache ~digest ~strategy:"heuristic" ~wapp ~demand:None
          { Scache.text; rho; nodes_used }
    | Error e -> failwith e
  in
  Bechamel.Test.make ~name:"serve/plan-cached"
    (Bechamel.Staged.stage (fun () ->
         match Scache.find cache ~digest ~strategy:"heuristic" ~wapp ~demand:None with
         | Some e ->
             ignore
               (Sproto.encode_reply
                  {
                    Sproto.reply_id = 1;
                    response =
                      Sproto.Plan_ok
                        {
                          text = e.Scache.text;
                          rho = e.Scache.rho;
                          nodes_used = e.Scache.nodes_used;
                          cached = true;
                        };
                  })
         | None -> failwith "serve/plan-cached: unexpected cache miss"))

(* The cold plan with the full tracing tax a sampled request pays on
   the serving path: worker-side stage samples (mutex + raw clock
   reads), span grafting into the trace store, and the finish
   accounting.  Its distance from serve/plan-cold IS the observability
   overhead — gated below. *)
let traced_plan_store =
  lazy (Adept_obs.Request_trace.create ~sample_rate:1.0 ~max_traces:8 ())

let run_plan_traced () =
  let module Rt = Adept_obs.Request_trace in
  let traces = Lazy.force traced_plan_store in
  let now = Unix.gettimeofday in
  let t0 = now () in
  match Rt.begin_with_id traces ~id:1 ~now:t0 with
  | None -> failwith "serve/plan-traced: rate-1.0 request not sampled"
  | Some h ->
      let prof = Sprof.create ~now in
      (match Srender.plan ~prof serve_plan_params with
      | Ok (_text, _rho, _nodes_used) -> ()
      | Error e -> failwith e);
      let parent = ref (-1) in
      List.iter
        (fun (s : Sprof.sample) ->
          let kind =
            Rt.Stage
              (match s.Sprof.ps_stage with
              | "shard" -> Rt.Shard_plan
              | "replay" -> Rt.Replay
              | _ -> Rt.Render_reply)
          in
          parent :=
            Rt.add_span traces h ~parent:!parent ~kind
              ~node:(max 0 s.Sprof.ps_shard) ~start:s.Sprof.ps_start
              ~stop:s.Sprof.ps_stop)
        (Sprof.samples prof);
      Rt.finish traces h ~now:(now ())

let bench_serve_plan_traced =
  Bechamel.Test.make ~name:"serve/plan-traced"
    (Bechamel.Staged.stage run_plan_traced)

(* The traced plan plus the flight recorder's per-request tax: a
   Begin_request and a Finish (with the full span array) appended and
   flushed to the journal.  The OTLP push rides the scrape cadence, not
   the request path, so it is deliberately absent here. *)
let bench_journal_dir =
  lazy
    (let path = Filename.temp_file "adept-bench-journal" "" in
     Sys.remove path;
     Unix.mkdir path 0o755;
     path)

let recorded_plan_journal =
  lazy
    (match Adept_obs.Journal.create (Lazy.force bench_journal_dir) with
    | Ok w -> w
    | Error e -> failwith ("serve/plan-recorded: " ^ e))

let run_plan_recorded () =
  let module Rt = Adept_obs.Request_trace in
  let module Journal = Adept_obs.Journal in
  let traces = Lazy.force traced_plan_store in
  let w = Lazy.force recorded_plan_journal in
  let now = Unix.gettimeofday in
  let t0 = now () in
  match Rt.begin_with_id traces ~id:1 ~now:t0 with
  | None -> failwith "serve/plan-recorded: rate-1.0 request not sampled"
  | Some h ->
      ignore
        (Journal.append w
           (Journal.Begin_request { b_at = t0; b_trace = 1; b_sampled = true }));
      let prof = Sprof.create ~now in
      (match Srender.plan ~prof serve_plan_params with
      | Ok (_text, _rho, _nodes_used) -> ()
      | Error e -> failwith e);
      let parent = ref (-1) in
      List.iter
        (fun (s : Sprof.sample) ->
          let kind =
            Rt.Stage
              (match s.Sprof.ps_stage with
              | "shard" -> Rt.Shard_plan
              | "replay" -> Rt.Replay
              | _ -> Rt.Render_reply)
          in
          parent :=
            Rt.add_span traces h ~parent:!parent ~kind
              ~node:(max 0 s.Sprof.ps_shard) ~start:s.Sprof.ps_start
              ~stop:s.Sprof.ps_stop)
        (Sprof.samples prof);
      let t1 = now () in
      let tr = Rt.finish_trace traces h ~now:t1 in
      ignore
        (Journal.append w
           (Journal.Finish
              {
                f_at = t1;
                f_trace = 1;
                f_issued = t0;
                f_conn = 1;
                f_spans =
                  Option.map (fun t -> t.Adept_obs.Request_trace.tr_spans) tr;
                f_dropped_spans = Rt.dropped_spans traces;
              }))

let bench_serve_plan_recorded =
  Bechamel.Test.make ~name:"serve/plan-recorded"
    (Bechamel.Staged.stage run_plan_recorded)

(* Raw recorder throughput: 1000 spans' worth of Finish records (125
   finishes of 8 spans each) appended and flushed. *)
let bench_journal_append =
  let module Journal = Adept_obs.Journal in
  let spans =
    Array.init 8 (fun i ->
        {
          Adept_obs.Request_trace.sp_id = i;
          sp_parent = i - 1;
          sp_kind = Adept_obs.Request_trace.Stage Adept_obs.Request_trace.Parse;
          sp_node = -1;
          sp_start = float_of_int i;
          sp_stop = float_of_int i +. 0.5;
        })
  in
  Bechamel.Test.make ~name:"journal/append-1k-spans"
    (Bechamel.Staged.stage (fun () ->
         let w = Lazy.force recorded_plan_journal in
         for i = 1 to 125 do
           ignore
             (Journal.append w
                (Journal.Finish
                   {
                     f_at = float_of_int i;
                     f_trace = i;
                     f_issued = float_of_int i -. 0.5;
                     f_conn = 1;
                     f_spans = Some spans;
                     f_dropped_spans = 0;
                   }))
         done))

(* The wall-clock overhead gate on the hard invariant's cheap half:
   tracing may not tax the request path.  Interleaved p50s (drift hits
   both arms equally) of the traced and untraced cold plan; traced must
   stay within 5%. *)
let check_tracing_overhead () =
  let iters = 30 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let untraced () =
    match Srender.plan serve_plan_params with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  (* warm both paths before measuring *)
  untraced ();
  run_plan_traced ();
  let a = Array.make iters 0.0 and b = Array.make iters 0.0 in
  for i = 0 to iters - 1 do
    a.(i) <- time untraced;
    b.(i) <- time run_plan_traced
  done;
  Array.sort compare a;
  Array.sort compare b;
  let p50 x = x.(Array.length x / 2) in
  let ratio = p50 b /. p50 a in
  Printf.printf
    "tracing overhead: plan-cold p50 %.0f ns untraced, %.0f ns traced (%.3fx, gate 1.05x)\n"
    (p50 a *. 1e9) (p50 b *. 1e9) ratio;
  if ratio > 1.05 then begin
    print_endline "bench: tracing overhead beyond the 1.05x gate";
    exit 1
  end

(* The same interleaved-p50 gate with the flight recorder on: tracing
   plus two flushed journal appends per request must stay within 10%
   of the untraced cold plan. *)
let check_recorded_overhead () =
  let iters = 30 in
  let time f =
    let t0 = Unix.gettimeofday () in
    f ();
    Unix.gettimeofday () -. t0
  in
  let untraced () =
    match Srender.plan serve_plan_params with
    | Ok _ -> ()
    | Error e -> failwith e
  in
  untraced ();
  run_plan_recorded ();
  let a = Array.make iters 0.0 and b = Array.make iters 0.0 in
  for i = 0 to iters - 1 do
    a.(i) <- time untraced;
    b.(i) <- time run_plan_recorded
  done;
  Array.sort compare a;
  Array.sort compare b;
  let p50 x = x.(Array.length x / 2) in
  let ratio = p50 b /. p50 a in
  Printf.printf
    "recorder overhead: plan-cold p50 %.0f ns untraced, %.0f ns recorded (%.3fx, gate 1.10x)\n"
    (p50 a *. 1e9) (p50 b *. 1e9) ratio;
  if ratio > 1.10 then begin
    print_endline "bench: flight-recorder overhead beyond the 1.10x gate";
    exit 1
  end

(* Reads only the format write_bench_json produces (one result object per
   line) — good enough without a JSON dependency. *)
let read_bench_json path =
  let ic =
    try open_in path
    with Sys_error e ->
      prerr_endline ("bench: cannot read baseline: " ^ e);
      exit 2
  in
  let entries = ref [] in
  (try
     while true do
       let line = String.trim (input_line ic) in
       try
         Scanf.sscanf line "{%S: %S, %S: %f, %S: %d"
           (fun k1 name k2 mean k3 runs ->
             if k1 = "name" && k2 = "mean_ns" && k3 = "runs" then
               entries := (name, mean, runs) :: !entries)
       with Scanf.Scan_failure _ | Failure _ | End_of_file -> ()
     done
   with End_of_file -> ());
  close_in ic;
  List.rev !entries

(* Machine-readable snapshot of the micro results, for CI artifacts and
   cross-commit comparison.  MERGES: `bench micro` and `bench serve` own
   disjoint entry names, and each run must leave the other's rows in
   BENCH_sim.json intact — existing rows survive unless rewritten. *)
let write_bench_json path entries =
  let keep =
    if Sys.file_exists path then
      List.filter
        (fun (name, _, _) ->
          not (List.exists (fun (n, _, _) -> n = name) entries))
        (read_bench_json path)
    else []
  in
  let entries = List.sort compare (keep @ entries) in
  let oc = open_out path in
  output_string oc "{\n  \"schema\": \"adept-bench/v1\",\n  \"results\": [\n";
  let last = List.length entries - 1 in
  List.iteri
    (fun i (name, mean_ns, runs) ->
      Printf.fprintf oc "    {\"name\": %S, \"mean_ns\": %.1f, \"runs\": %d}%s\n"
        name mean_ns runs
        (if i = last then "" else ","))
    entries;
  output_string oc "  ]\n}\n";
  close_out oc;
  Printf.printf "wrote %s\n" path

(* ---------- closed-loop serve driver ---------- *)

(* `bench serve` re-execs this binary (posix_spawn) as one server
   process and [clients] closed-loop client processes: Unix.fork is
   forbidden once any domain exists, and on OCaml 5.1 in-process client
   threads beside a domain-backed server deadlock the runtime's
   stop-the-world handshake (docs/SERVE.md) — separate thread-free
   processes sidestep both and keep this binary's micros unpolluted by
   the systhreads tick thread.  With a variable set, the binary serves
   or drives load instead of benching. *)
let serve_socket_var = "ADEPT_BENCH_SERVE_SOCKET"
let serve_prom_var = "ADEPT_BENCH_SERVE_PROM"
let client_socket_var = "ADEPT_BENCH_CLIENT_SOCKET"
let client_window_var = "ADEPT_BENCH_CLIENT_WINDOW"
let client_out_var = "ADEPT_BENCH_CLIENT_OUT"
let client_trace_var = "ADEPT_BENCH_CLIENT_TRACE_BASE"

let () =
  match Sys.getenv_opt serve_socket_var with
  | None -> ()
  | Some path ->
      let config = Sserver.default_config (Sserver.Unix_socket path) in
      let config =
        (* with a scrape-file path set, the bench server runs fully
           observed: every request traced, runtime events on, the
           Prometheus snapshot atomically rewritten each second *)
        match Sys.getenv_opt serve_prom_var with
        | None -> config
        | Some prom ->
            {
              config with
              Sserver.obs =
                Some
                  { (Sserver.default_obs ()) with Sserver.prom_path = Some prom };
            }
      in
      Sserver.run config;
      exit 0

(* One closed-loop client: zero think time, wall-clock window shared
   with its siblings via the environment, post-warmup latencies written
   one per line for the parent to aggregate. *)
let run_serve_client path =
  let warm_until, stop_at =
    match Sys.getenv_opt client_window_var with
    | Some w -> Scanf.sscanf w "%f %f" (fun a b -> (a, b))
    | None -> failwith ("bench client: " ^ client_window_var ^ " unset")
  in
  let out =
    match Sys.getenv_opt client_out_var with
    | Some p -> p
    | None -> failwith ("bench client: " ^ client_out_var ^ " unset")
  in
  let trace_base =
    Option.bind (Sys.getenv_opt client_trace_var) int_of_string_opt
  in
  let c =
    match Sclient.connect_retry ?trace_base (Sserver.Unix_socket path) with
    | Ok c -> c
    | Error e -> failwith ("bench client: " ^ e)
  in
  let request = Sproto.Plan serve_plan_params in
  let acc = ref [] in
  let rec go () =
    let started = Unix.gettimeofday () in
    if started < stop_at then begin
      (match Sclient.call c request with
      | Ok (Sproto.Error _) -> failwith "bench client: server-side error"
      | Ok _ -> ()
      | Error e -> failwith ("bench client: " ^ e));
      if started >= warm_until then
        acc := (Unix.gettimeofday () -. started) :: !acc;
      go ()
    end
  in
  go ();
  Sclient.close c;
  let oc = open_out out in
  List.iter (fun l -> Printf.fprintf oc "%.9f\n" l) !acc;
  close_out oc;
  exit 0

let () =
  match Sys.getenv_opt client_socket_var with
  | None -> ()
  | Some path -> run_serve_client path

let spawn_with extra_env =
  let env = Array.append (Unix.environment ()) extra_env in
  Unix.create_process_env Sys.executable_name
    [| Sys.executable_name |]
    env Unix.stdin Unix.stdout Unix.stderr

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(max 0 (min (n - 1) (int_of_float (ceil (p *. float_of_int n)) - 1)))

(* Sustained QPS and tail latency of the served hot path: a pool-sized
   server, [clients] closed-loop client processes, a warm cache after
   the priming query.  Results land in BENCH_sim.json beside the
   Bechamel micros. *)
let run_serve_driver () =
  let path = Filename.temp_file "adept-bench-serve" ".sock" in
  Sys.remove path;
  let prom_out = "BENCH_serve_metrics.prom" in
  let trace_out = "BENCH_serve_trace.json" in
  let server =
    spawn_with
      [| serve_socket_var ^ "=" ^ path; serve_prom_var ^ "=" ^ prom_out |]
  in
  Fun.protect
    ~finally:(fun () ->
      (try Unix.kill server Sys.sigterm with Unix.Unix_error _ -> ());
      ignore (Unix.waitpid [] server))
    (fun () ->
      let clients = 4 and warmup = 0.5 and duration = 3.0 in
      (* prime: the first query plans cold and fills the cache, so the
         measured window is the steady state *)
      let c0 =
        match Sclient.connect_retry (Sserver.Unix_socket path) with
        | Ok c -> c
        | Error e -> failwith ("bench serve: " ^ e)
      in
      (match Sclient.call c0 (Sproto.Plan serve_plan_params) with
      | Ok (Sproto.Error _) -> failwith "bench serve: priming query failed"
      | Ok _ -> ()
      | Error e -> failwith ("bench serve: " ^ e));
      Sclient.close c0;
      let t0 = Unix.gettimeofday () in
      let window =
        Printf.sprintf "%.6f %.6f" (t0 +. warmup) (t0 +. warmup +. duration)
      in
      let outs =
        List.init clients (fun _ -> Filename.temp_file "adept-bench-lat" ".txt")
      in
      let pids =
        (* disjoint deterministic trace-id bases per client — ids never
           collide, so the server's head sampling is reproducible *)
        List.mapi
          (fun i out ->
            spawn_with
              [|
                client_socket_var ^ "=" ^ path;
                client_window_var ^ "=" ^ window;
                client_out_var ^ "=" ^ out;
                client_trace_var ^ "=" ^ string_of_int ((i + 1) * 1_000_000);
              |])
          outs
      in
      List.iter
        (fun pid ->
          match Unix.waitpid [] pid with
          | _, Unix.WEXITED 0 -> ()
          | _ -> failwith "bench serve: client process failed")
        pids;
      let all =
        List.concat_map
          (fun out ->
            let ic = open_in out in
            let samples = ref [] in
            (try
               while true do
                 samples := float_of_string (input_line ic) :: !samples
               done
             with End_of_file -> ());
            close_in ic;
            Sys.remove out;
            !samples)
          outs
        |> Array.of_list
      in
      Array.sort compare all;
      let total = Array.length all in
      let qps = float_of_int total /. duration in
      let p50 = percentile all 0.50 *. 1e9
      and p99 = percentile all 0.99 *. 1e9 in
      Printf.printf
        "serve: %d closed-loop clients over %.1fs: %.0f queries/s, p50 %.2f us, p99 %.2f us (%d queries)\n"
        clients duration qps (p50 /. 1e3) (p99 /. 1e3) total;
      (* pull the wall-clock observability artifacts off the live
         server before draining it: the slowest-request Chrome trace
         and the live stats line *)
      (match Sclient.connect_retry (Sserver.Unix_socket path) with
      | Error e -> failwith ("bench serve: " ^ e)
      | Ok c ->
          (match Sclient.call c Sproto.Trace_dump with
          | Ok (Sproto.Trace_ok { chrome }) ->
              let oc = open_out trace_out in
              output_string oc chrome;
              close_out oc;
              Printf.printf "wrote %s (%d bytes, chrome://tracing)\n" trace_out
                (String.length chrome)
          | Ok _ -> failwith "bench serve: unexpected trace reply"
          | Error e -> failwith ("bench serve: trace dump: " ^ e));
          (match Sclient.call c Sproto.Stats with
          | Ok (Sproto.Stats_ok { Sproto.live = Some l; _ }) ->
              Printf.printf
                "serve live: p50 %.2f us, p99 %.2f us, cache hit %.1f%%, gc pause p99 %.2f us, %d traces sampled\n"
                (l.Sproto.latency_p50 *. 1e6)
                (l.Sproto.latency_p99 *. 1e6)
                (100.0 *. l.Sproto.cache_hit_ratio)
                (l.Sproto.gc_pause_p99 *. 1e6)
                l.Sproto.traces_sampled
          | Ok _ -> failwith "bench serve: stats carried no live block"
          | Error e -> failwith ("bench serve: stats: " ^ e));
          Sclient.close c);
      write_bench_json "BENCH_sim.json"
        [
          ("adept/serve/queries-per-sec", qps, total);
          ("adept/serve/query-latency-p50-ns", p50, total);
          ("adept/serve/query-latency-p99-ns", p99, total);
        ]);
  (* the server rewrote the scrape file on its way out *)
  if Sys.file_exists prom_out then
    Printf.printf "wrote %s (Prometheus snapshot)\n" prom_out

(* The perf trajectory gate: fresh micro results against a committed
   snapshot.  Only benchmarks present in both are compared; a mean more
   than [tolerance] (relative) above the baseline is a regression and
   the process exits non-zero so CI actually enforces it. *)
let compare_against ~baseline_path ~baseline ~tolerance fresh =
  Printf.printf "\nregression guard vs %s (tolerance %.0f%%):\n" baseline_path
    (100.0 *. tolerance);
  let regressions = ref 0 in
  List.iter
    (fun (name, mean, _) ->
      match List.find_opt (fun (n, _, _) -> n = name) baseline with
      | None -> Printf.printf "  %-44s %12.0f ns/run      (new, no baseline)\n" name mean
      | Some (_, base_mean, _) ->
          let delta = 100.0 *. ((mean /. base_mean) -. 1.0) in
          let regressed = mean > base_mean *. (1.0 +. tolerance) in
          if regressed then incr regressions;
          Printf.printf "  %-44s %12.0f ns/run  %+7.1f%%  %s\n" name mean delta
            (if regressed then "REGRESSION" else "ok"))
    (List.sort compare fresh);
  if !regressions > 0 then begin
    Printf.printf "bench: %d benchmark(s) regressed beyond tolerance\n" !regressions;
    exit 1
  end
  else print_endline "bench: no regressions beyond tolerance"

let run_micro () =
  let open Bechamel in
  let benchmarks =
    Test.make_grouped ~name:"adept"
      [
        bench_table3; bench_fig2_3; bench_fig4_5; bench_table4; bench_fig6;
        bench_fig7; bench_fault_sweep; bench_self_heal; bench_rollout;
        bench_traced;
        bench_scrape; bench_plan_2000; bench_window_ring; bench_window_naive;
        bench_event_queue; bench_xml;
        bench_plan_100k; bench_replan_incremental; bench_replan_full;
        bench_serve_plan_cold; bench_serve_plan_cached;
        bench_serve_plan_traced; bench_serve_plan_recorded;
        bench_journal_append;
      ]
  in
  let cfg = Benchmark.cfg ~limit:1000 ~quota:(Time.second 1.5) ~kde:(Some 1000) () in
  let instances = Toolkit.Instance.[ monotonic_clock ] in
  let raw = Benchmark.all cfg instances benchmarks in
  let results =
    List.map (fun instance -> Analyze.all (Analyze.ols ~bootstrap:0 ~r_square:true
        ~predictors:[| Measure.run |]) instance raw)
      instances
  in
  let results = Analyze.merge (Analyze.ols ~bootstrap:0 ~r_square:true
      ~predictors:[| Measure.run |]) instances results in
  (* plain-text report: nanoseconds per run for each benchmark *)
  print_endline "Bechamel microbenches (time per run):";
  let entries = ref [] in
  Hashtbl.iter
    (fun label by_bench ->
      if label = Measure.label Toolkit.Instance.monotonic_clock then
        Hashtbl.iter
          (fun name ols ->
            match Bechamel.Analyze.OLS.estimates ols with
            | Some [ est ] ->
                Printf.printf "  %-40s %12.0f ns/run\n" name est;
                let runs =
                  match Hashtbl.find_opt raw name with
                  | Some (b : Benchmark.t) -> b.Benchmark.stats.Benchmark.samples
                  | None -> 0
                in
                entries := (name, est, runs) :: !entries
            | _ -> Printf.printf "  %-40s (no estimate)\n" name)
          by_bench)
    results;
  write_bench_json "BENCH_sim.json" !entries;
  !entries

let () =
  let rec parse args against tolerance rest =
    match args with
    | "--against" :: file :: tl -> parse tl (Some file) tolerance rest
    | "--against" :: [] ->
        prerr_endline "bench: --against needs a file argument";
        exit 2
    | "--tolerance" :: t :: tl -> (
        match float_of_string_opt t with
        | Some t when t >= 0.0 -> parse tl against t rest
        | _ ->
            prerr_endline "bench: --tolerance needs a non-negative number";
            exit 2)
    | "--tolerance" :: [] ->
        prerr_endline "bench: --tolerance needs a number";
        exit 2
    | a :: tl -> parse tl against tolerance (a :: rest)
    | [] -> (against, tolerance, List.rev rest)
  in
  let against, tolerance, args =
    parse (List.tl (Array.to_list Sys.argv)) None 0.25 []
  in
  let micro = List.mem "micro" args || against <> None in
  let serve_mode = List.mem "serve" args in
  let ids =
    List.filter (fun a -> a <> "micro" && a <> "all" && a <> "serve") args
  in
  let run_all =
    args = [] || List.mem "all" args
    || (ids = [] && (not micro) && not serve_mode)
  in
  if run_all then run_experiments []
  else if ids <> [] then run_experiments ids;
  if serve_mode then run_serve_driver ();
  if micro then begin
    (* Read the baseline before run_micro overwrites BENCH_sim.json —
       the CI invocation gates against the committed copy of the same
       file it regenerates. *)
    let baseline = Option.map (fun p -> (p, read_bench_json p)) against in
    let fresh = run_micro () in
    match baseline with
    | Some (baseline_path, baseline) ->
        compare_against ~baseline_path ~baseline ~tolerance fresh;
        check_tracing_overhead ();
        check_recorded_overhead ()
    | None -> ()
  end
