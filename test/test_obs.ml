(* Tests for Adept_obs: labels, histograms (incl. the quantile error
   bound and merge algebra), ring buffers, the registry, exporters,
   tracer, the bounded-memory Run_stats, the model-vs-measured report,
   and the Prometheus golden export of a deterministic run. *)

module Label = Adept_obs.Label
module Histogram = Adept_obs.Histogram
module Counter = Adept_obs.Counter
module Gauge = Adept_obs.Gauge
module Ring = Adept_obs.Ring
module Registry = Adept_obs.Registry
module Tracer = Adept_obs.Tracer
module Semconv = Adept_obs.Semconv
module Export = Adept_obs.Export
module Report = Adept_obs.Report
module Run_stats = Adept_sim.Run_stats
module Scenario = Adept_sim.Scenario
module Tree = Adept_hierarchy.Tree
module Platform = Adept_platform.Platform
module Rt = Adept_obs.Request_trace
module Critical_path = Adept_obs.Critical_path
module Attribution = Adept_obs.Attribution

let params = Adept_model.Params.diet_lyon

(* ---------- Label ---------- *)

let test_label_canonical () =
  let a = Label.v [ ("b", "2"); ("a", "1") ] in
  let b = Label.v [ ("a", "1"); ("b", "2") ] in
  Alcotest.(check bool) "order-insensitive equality" true (Label.equal a b);
  Alcotest.(check (list (pair string string)))
    "sorted pairs" [ ("a", "1"); ("b", "2") ] (Label.pairs a);
  Alcotest.(check (option string)) "find" (Some "2") (Label.find a "b");
  Alcotest.(check bool) "duplicate key rejected" true
    (match Label.v [ ("a", "1"); ("a", "2") ] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad key rejected" true
    (match Label.v [ ("0bad", "1") ] with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_label_prometheus_escaping () =
  let l = Label.v [ ("k", "a\"b\\c\nd") ] in
  Alcotest.(check string) "escaped" "{k=\"a\\\"b\\\\c\\nd\"}" (Label.to_prometheus l);
  Alcotest.(check string) "empty renders empty" "" (Label.to_prometheus Label.empty)

(* ---------- Histogram ---------- *)

let test_histogram_exact_stats () =
  let h = Histogram.create () in
  List.iter (Histogram.record h) [ 1.0; 2.0; 3.0; 4.0 ];
  let s = Histogram.snapshot h in
  Alcotest.(check int) "count" 4 (Histogram.count s);
  Alcotest.(check (float 1e-12)) "sum" 10.0 (Histogram.sum s);
  Alcotest.(check (float 1e-12)) "min" 1.0 (Option.get (Histogram.min_recorded s));
  Alcotest.(check (float 1e-12)) "max" 4.0 (Option.get (Histogram.max_recorded s));
  Alcotest.(check (float 1e-12)) "mean" 2.5 (Option.get (Histogram.mean s))

let test_histogram_edge_values () =
  let h = Histogram.create ~min_value:1e-6 ~max_value:1e6 () in
  Histogram.record h Float.nan;
  (* ignored *)
  Histogram.record h (-5.0);
  (* underflow bucket *)
  Histogram.record h 0.0;
  (* underflow bucket *)
  Histogram.record h 1e12;
  (* clamped to max_value *)
  let s = Histogram.snapshot h in
  Alcotest.(check int) "NaN ignored" 3 (Histogram.count s);
  Alcotest.(check bool) "quantile of underflow is min_value" true
    (Option.get (Histogram.quantile s 10.0) <= 1e-6);
  Alcotest.(check bool) "clamped stays below max" true
    (Option.get (Histogram.quantile s 100.0) <= 1e6 *. 1.02)

(* The documented guarantee: every quantile estimate is within alpha
   relative error of the exact percentile of the recorded stream. *)
let exact_percentile values q =
  let sorted = List.sort compare values in
  let n = List.length sorted in
  let rank = max 1 (int_of_float (Float.ceil (q /. 100.0 *. float_of_int n))) in
  List.nth sorted (rank - 1)

let prop_histogram_quantile_bound =
  QCheck.Test.make ~count:200 ~name:"histogram quantile within alpha bound"
    QCheck.(list_of_size Gen.(int_range 1 200) (float_range 1e-6 1e6))
    (fun values ->
      let alpha = 0.01 in
      let h = Histogram.create ~alpha () in
      List.iter (Histogram.record h) values;
      let s = Histogram.snapshot h in
      List.for_all
        (fun q ->
          let exact = exact_percentile values q in
          let est = Option.get (Histogram.quantile s q) in
          Float.abs (est -. exact) <= (alpha *. exact *. 1.000001) +. 1e-12)
        [ 0.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0; 100.0 ])

(* Merge algebra: merging shard snapshots is the same as recording the
   concatenated stream, and merge is commutative/associative. *)
let snapshot_of values =
  let h = Histogram.create () in
  List.iter (Histogram.record h) values;
  Histogram.snapshot h

let same_snapshot a b =
  (* sums are accumulated in different orders, so compare them to fp
     round-off; counts, extrema and buckets must agree exactly *)
  Histogram.count a = Histogram.count b
  && Float.abs (Histogram.sum a -. Histogram.sum b)
     <= 1e-9 *. Float.max 1.0 (Float.abs (Histogram.sum a))
  && Histogram.min_recorded a = Histogram.min_recorded b
  && Histogram.max_recorded a = Histogram.max_recorded b
  && Histogram.cumulative_buckets a = Histogram.cumulative_buckets b

let prop_histogram_merge_is_concat =
  QCheck.Test.make ~count:200 ~name:"merge of shards = single-stream recording"
    QCheck.(
      pair
        (list_of_size Gen.(int_range 0 100) (float_range 1e-6 1e6))
        (list_of_size Gen.(int_range 0 100) (float_range 1e-6 1e6)))
    (fun (xs, ys) ->
      same_snapshot
        (Histogram.merge (snapshot_of xs) (snapshot_of ys))
        (snapshot_of (xs @ ys)))

let prop_histogram_merge_commutes =
  QCheck.Test.make ~count:200 ~name:"merge commutative and associative"
    QCheck.(
      triple
        (list_of_size Gen.(int_range 0 60) (float_range 1e-6 1e6))
        (list_of_size Gen.(int_range 0 60) (float_range 1e-6 1e6))
        (list_of_size Gen.(int_range 0 60) (float_range 1e-6 1e6)))
    (fun (xs, ys, zs) ->
      let a = snapshot_of xs and b = snapshot_of ys and c = snapshot_of zs in
      same_snapshot (Histogram.merge a b) (Histogram.merge b a)
      && same_snapshot
           (Histogram.merge (Histogram.merge a b) c)
           (Histogram.merge a (Histogram.merge b c)))

let test_histogram_merge_alpha_mismatch () =
  let a = Histogram.snapshot (Histogram.create ~alpha:0.01 ()) in
  let b = Histogram.snapshot (Histogram.create ~alpha:0.02 ()) in
  Alcotest.(check bool) "mismatched alpha rejected" true
    (match Histogram.merge a b with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_histogram_bounded_buckets () =
  let h = Histogram.create () in
  let rng = Adept_util.Rng.create 5 in
  for _ = 1 to 100_000 do
    Histogram.record h (Adept_util.Rng.float rng 1000.0 +. 1e-9)
  done;
  let s = Histogram.snapshot h in
  Alcotest.(check int) "count" 100_000 (Histogram.count s);
  Alcotest.(check bool)
    (Printf.sprintf "buckets bounded (%d)" (Histogram.num_buckets s))
    true
    (Histogram.num_buckets s < 2500)

(* ---------- Ring ---------- *)

let test_ring_window_exact () =
  let r = Ring.create ~retention:infinity () in
  List.iter (fun t -> Ring.push r ~time:t t) [ 0.0; 1.0; 1.0; 2.5; 4.0 ];
  Alcotest.(check int) "half-open window" 3 (Ring.count_in r ~t0:1.0 ~t1:4.0);
  Alcotest.(check int) "everything" 5 (Ring.count_in r ~t0:0.0 ~t1:5.0);
  Alcotest.(check int) "empty window" 0 (Ring.count_in r ~t0:5.0 ~t1:9.0)

let test_ring_prunes_and_guards () =
  let r = Ring.create ~capacity:4 ~retention:2.0 () in
  for i = 0 to 99 do
    Ring.push r ~time:(float_of_int i) 0.0
  done;
  Alcotest.(check bool) "bounded length" true (Ring.length r <= 4);
  Alcotest.(check int) "recent window intact" 2 (Ring.count_in r ~t0:98.0 ~t1:100.0);
  Alcotest.(check bool) "pre-retention query rejected" true
    (match Ring.count_in r ~t0:10.0 ~t1:20.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "time must not decrease" true
    (match Ring.push r ~time:0.0 0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Registry ---------- *)

let test_registry_get_or_create () =
  let reg = Registry.create () in
  let c1 = Registry.counter reg "adept_test_total" in
  let c2 = Registry.counter reg "adept_test_total" in
  Counter.inc c1;
  Counter.inc c2;
  Alcotest.(check (float 0.0)) "same series" 2.0 (Counter.value c1);
  let labels = Label.v [ ("node", "1") ] in
  let _ = Registry.counter reg ~labels "adept_test_total" in
  Alcotest.(check int) "two series" 2 (Registry.num_series reg);
  Alcotest.(check bool) "kind conflict rejected" true
    (match Registry.gauge reg "adept_test_total" with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Tracer ---------- *)

let test_tracer_spans_and_bound () =
  let tr = Tracer.create ~max_items:3 () in
  let sp = Tracer.span_start tr ~at:1.0 "migration" in
  Tracer.event tr ~at:1.5 "crash";
  Tracer.span_end tr ~at:2.0 sp;
  Tracer.span_end tr ~at:9.0 sp;
  (* idempotent *)
  Tracer.event tr ~at:2.5 "a";
  Tracer.event tr ~at:3.0 "b";
  Alcotest.(check int) "bounded" 3 (Tracer.length tr);
  Alcotest.(check int) "drops counted" 1 (Tracer.dropped tr);
  match Tracer.items tr with
  | Tracer.Span { end_at; _ } :: _ ->
      Alcotest.(check (option (float 0.0))) "span closed once" (Some 2.0) end_at
  | _ -> Alcotest.fail "expected leading span"

(* ---------- Exporters ---------- *)

let small_registry () =
  let reg = Registry.create () in
  Counter.inc ~by:3.0 (Registry.counter reg ~help:"Things counted." "adept_things_total");
  Gauge.set (Registry.gauge reg "adept_level") 0.5;
  let h = Registry.histogram reg ~labels:(Label.v [ ("node", "1") ]) "adept_time_seconds" in
  Histogram.record h 0.5;
  Histogram.record h 2.0;
  reg

let test_export_prometheus_format () =
  let text = Export.prometheus (Registry.snapshot (small_registry ())) in
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("contains " ^ needle) true
        (Astring.String.is_infix ~affix:needle text))
    [
      "# HELP adept_things_total Things counted.";
      "# TYPE adept_things_total counter";
      "adept_things_total 3";
      "adept_level 0.5";
      "# TYPE adept_time_seconds histogram";
      "adept_time_seconds_bucket{le=\"+Inf\",node=\"1\"} 2";
      "adept_time_seconds_sum{node=\"1\"} 2.5";
      "adept_time_seconds_count{node=\"1\"} 2";
    ]

let test_export_jsonl_and_csv () =
  let families = Registry.snapshot (small_registry ()) in
  let jsonl = Export.jsonl families in
  Alcotest.(check int) "one line per series" 3
    (List.length (String.split_on_char '\n' (String.trim jsonl)));
  Alcotest.(check bool) "json objects" true
    (List.for_all
       (fun l -> String.length l > 1 && l.[0] = '{')
       (String.split_on_char '\n' (String.trim jsonl)));
  let csv = Adept_util.Csv.to_string (Export.csv families) in
  Alcotest.(check bool) "csv header" true
    (Astring.String.is_prefix ~affix:"metric,labels,stat,value" csv);
  Alcotest.(check bool) "csv p95 row" true
    (Astring.String.is_infix ~affix:"adept_time_seconds" csv)

let test_export_deterministic () =
  let render () = Export.prometheus (Registry.snapshot (small_registry ())) in
  Alcotest.(check string) "identical across registries" (render ()) (render ())

(* ---------- Run_stats bounded memory ---------- *)

let test_run_stats_bounded_memory () =
  let s = Run_stats.create ~retention:5.0 () in
  let n = 1_000_000 in
  for i = 1 to n do
    let time = float_of_int i *. 0.001 in
    Run_stats.record_issue s ~time;
    Run_stats.record_completion s ~issued_at:(time -. 0.0005) ~time ~server:0
  done;
  Alcotest.(check int) "all counted" n (Run_stats.completed s);
  (* retention is 5 s at 1000 completions/s: the ring holds the window,
     not the run *)
  Alcotest.(check bool)
    (Printf.sprintf "ring bounded (%d)" (Run_stats.retained_completions s))
    true
    (Run_stats.retained_completions s < 10_000);
  Alcotest.(check bool) "histogram bounded" true
    (Adept_obs.Histogram.num_buckets (Run_stats.response_snapshot s) < 2500);
  Alcotest.(check int) "window query exact" 5000
    (Run_stats.completions_in s ~t0:995.0 ~t1:1000.0);
  Alcotest.(check bool) "percentile still served" true
    (Run_stats.response_percentile s 95.0 <> None)

(* ---------- instrumented scenario ---------- *)

let star_platform n_servers =
  Adept_platform.Generator.grid5000_lyon ~n:(n_servers + 1) ()

let star_tree platform =
  let nodes = Platform.nodes platform in
  Tree.star (List.hd nodes) (List.tl nodes)

let observed_scenario () =
  let platform = star_platform 3 in
  let tree = star_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  ( platform,
    tree,
    Scenario.make ~seed:11 ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job)
      tree )

let test_scenario_obs_bit_identical () =
  let _, _, s = observed_scenario () in
  let plain = Scenario.run_fixed s ~clients:8 ~warmup:1.0 ~duration:2.0 in
  let registry = Registry.create () in
  let observed =
    Scenario.run_fixed ~registry s ~clients:8 ~warmup:1.0 ~duration:2.0
  in
  Alcotest.(check (float 0.0)) "throughput identical" plain.Scenario.throughput
    observed.Scenario.throughput;
  Alcotest.(check int) "completions identical" plain.Scenario.completed_total
    observed.Scenario.completed_total;
  Alcotest.(check (option (float 0.0))) "mean response identical"
    plain.Scenario.mean_response observed.Scenario.mean_response;
  Alcotest.(check bool) "series recorded" true (Registry.num_series registry > 10)

let test_scenario_obs_counters_consistent () =
  let _, _, s = observed_scenario () in
  let registry = Registry.create () in
  let r = Scenario.run_fixed ~registry s ~clients:8 ~warmup:1.0 ~duration:2.0 in
  let counter_value name =
    match Registry.find registry name with
    | Some { Registry.series = [ (_, Registry.Counter v) ]; _ } -> int_of_float v
    | _ -> -1
  in
  Alcotest.(check int) "issued counter" r.Scenario.issued_total
    (counter_value Semconv.requests_issued_total);
  Alcotest.(check int) "completed counter" r.Scenario.completed_total
    (counter_value Semconv.requests_completed_total)

let test_report_low_deviation () =
  let platform, tree, s = observed_scenario () in
  let registry = Registry.create () in
  let _ = Scenario.run_fixed ~registry s ~clients:30 ~warmup:2.0 ~duration:4.0 in
  let wapp = Adept_workload.Dgemm.(mflops (make 200)) in
  let report = Report.build ~registry ~params ~platform ~wapp ~tree in
  Alcotest.(check bool) "rows for every element" true
    (List.length report.Report.rows = 2 + (3 * 2));
  match Report.max_deviation report with
  | None -> Alcotest.fail "nothing measured"
  | Some d ->
      Alcotest.(check bool)
        (Printf.sprintf "max deviation %.4f below 5%%" d)
        true (d < 0.05);
      Alcotest.(check bool) "render mentions it" true
        (Astring.String.is_infix ~affix:"max deviation"
           (Report.render report))

(* ---------- request traces: store mechanics ---------- *)

(* One synthetic finished trace of the given duration. *)
let synthetic_trace store ~duration =
  match Rt.begin_request store ~now:0.0 with
  | None -> ()
  | Some h ->
      let _ =
        Rt.add_span store h ~parent:(-1) ~kind:(Rt.Compute Rt.Service) ~node:0
          ~start:0.0 ~stop:duration
      in
      Rt.finish store h ~now:duration

let test_rtrace_reservoir_top_n () =
  let store = Rt.create ~max_traces:3 () in
  List.iter
    (fun d -> synthetic_trace store ~duration:d)
    [ 4.0; 1.0; 6.0; 3.0; 5.0; 2.0 ];
  Alcotest.(check int) "all finished" 6 (Rt.finished store);
  Alcotest.(check int) "evictions counted as dropped" 3 (Rt.dropped store);
  Alcotest.(check (list (float 1e-12)))
    "true top-3, slowest first" [ 6.0; 5.0; 4.0 ]
    (List.map Rt.duration (Rt.exemplars store))

let test_rtrace_sampling_deterministic () =
  let sampled_set rate =
    let store = Rt.create ~sample_rate:rate () in
    List.filter_map
      (fun _ -> Option.map Rt.trace_id (Rt.begin_request store ~now:0.0))
      (List.init 400 Fun.id)
  in
  Alcotest.(check (list int)) "same rate, same sampled id set"
    (sampled_set 0.35) (sampled_set 0.35);
  let at_035 = List.length (sampled_set 0.35) in
  Alcotest.(check bool)
    (Printf.sprintf "rate 0.35 samples a strict subset (%d of 400)" at_035)
    true
    (at_035 > 0 && at_035 < 400);
  Alcotest.(check int) "rate 0 samples nothing" 0 (List.length (sampled_set 0.0));
  Alcotest.(check int) "rate 1 samples everything" 400
    (List.length (sampled_set 1.0));
  (* the decision is a pure function of the trace id *)
  let store = Rt.create ~sample_rate:0.35 () in
  List.iter
    (fun id ->
      Alcotest.(check bool)
        (Printf.sprintf "would_sample %d stable" id)
        (Rt.would_sample store id) (Rt.would_sample store id))
    [ 0; 1; 17; 123456 ]

let test_rtrace_span_overflow_drops () =
  let store = Rt.create ~max_spans:2 () in
  (match Rt.begin_request store ~now:0.0 with
  | None -> Alcotest.fail "rate 1 must sample"
  | Some h ->
      let p = ref (-1) in
      for i = 1 to 3 do
        p :=
          Rt.add_span store h ~parent:!p ~kind:(Rt.Compute Rt.Wreq) ~node:0
            ~start:(float_of_int (i - 1))
            ~stop:(float_of_int i)
      done;
      Rt.finish store h ~now:3.0);
  Alcotest.(check int) "overflowing span discarded" 1 (Rt.dropped_spans store);
  Alcotest.(check int) "poisoned trace dropped at finish" 1 (Rt.dropped store);
  Alcotest.(check (list (float 0.0))) "not retained" []
    (List.map Rt.duration (Rt.exemplars store))

(* ---------- request traces: a simulated star run ---------- *)

let traced_run ?(max_traces = 4) ?(clients = 8) () =
  let platform, tree, s = observed_scenario () in
  let registry = Registry.create () in
  let store = Rt.create ~max_traces () in
  let r =
    Scenario.run_fixed ~registry ~rtrace:store s ~clients ~warmup:1.0
      ~duration:2.0
  in
  (platform, tree, registry, store, r)

let utilization_of registry =
  match Registry.find registry Semconv.node_utilization_ratio with
  | None -> []
  | Some fam ->
      List.filter_map
        (fun (labels, value) ->
          match
            (Option.bind (Label.find labels Semconv.l_node) int_of_string_opt, value)
          with
          | Some id, Registry.Gauge u -> Some (id, u)
          | _ -> None)
        fam.Registry.series

let test_rtrace_critical_path_tiles () =
  let _, _, _, store, _ = traced_run () in
  Alcotest.(check bool) "exemplars retained" true (Rt.exemplars store <> []);
  List.iter
    (fun tr ->
      let cp = Rt.critical_path tr in
      (match cp with
      | [] -> Alcotest.fail "empty critical path"
      | first :: _ ->
          Alcotest.(check (float 0.0)) "chain starts at issue"
            tr.Rt.tr_issued first.Rt.sp_start);
      (* spans are recorded at completion from the same engine instants,
         so adjacent segments must meet exactly — no tolerance *)
      let rec tiles = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check (float 0.0)) "adjacent segments meet" a.Rt.sp_stop
              b.Rt.sp_start;
            tiles rest
        | [ last ] ->
            Alcotest.(check (float 0.0)) "chain ends at completion"
              tr.Rt.tr_finished last.Rt.sp_stop
        | [] -> ()
      in
      tiles cp)
    (Rt.exemplars store)

let test_rtrace_attribution_matches_model () =
  let platform, tree, registry, store, _ = traced_run () in
  let wapp = Adept_workload.Dgemm.(mflops (make 200)) in
  let predicted =
    Adept.Evaluate.bottleneck_element params
      ~bandwidth:(Platform.uniform_bandwidth platform) ~wapp tree
  in
  let attribution =
    Attribution.build ~store ~tree ~utilization:(utilization_of registry)
      ~predicted ()
  in
  Alcotest.(check bool) "service side predicted" true
    (predicted.Adept.Evaluate.be_side = `Service);
  Alcotest.(check (option bool)) "measurement confirms the model" (Some true)
    (Attribution.matches attribution);
  Alcotest.(check bool) "render carries the verdict" true
    (Astring.String.is_infix ~affix:"verdict: MATCH"
       (Attribution.render attribution))

let test_rtrace_observation_only () =
  let _, _, s = observed_scenario () in
  let plain = Scenario.run_fixed s ~clients:8 ~warmup:1.0 ~duration:2.0 in
  let traced =
    Scenario.run_fixed ~rtrace:(Rt.create ()) s ~clients:8 ~warmup:1.0
      ~duration:2.0
  in
  Alcotest.(check (float 0.0)) "throughput bit-identical" plain.Scenario.throughput
    traced.Scenario.throughput;
  Alcotest.(check int) "completions bit-identical" plain.Scenario.completed_total
    traced.Scenario.completed_total;
  Alcotest.(check (option (float 0.0))) "mean response bit-identical"
    plain.Scenario.mean_response traced.Scenario.mean_response

(* Satellite property: fault-free critical paths account for the whole
   response, and no element is attributed more than the wall time. *)
let prop_critical_path_accounts_response =
  QCheck.Test.make ~count:20 ~name:"critical path sums to end-to-end response"
    QCheck.(pair (int_range 1 1000) (int_range 2 10))
    (fun (seed, clients) ->
      let platform = star_platform 3 in
      let tree = star_tree platform in
      let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
      let s =
        Scenario.make ~seed ~params ~platform
          ~client:(Adept_workload.Client.closed_loop job)
          tree
      in
      let store = Rt.create ~max_traces:8 () in
      let _ = Scenario.run_fixed ~rtrace:store s ~clients ~warmup:0.5 ~duration:1.0 in
      Rt.exemplars store <> []
      && List.for_all
           (fun tr ->
             let wall = Rt.duration tr in
             let sum =
               List.fold_left
                 (fun acc sp -> acc +. (sp.Rt.sp_stop -. sp.Rt.sp_start))
                 0.0 (Rt.critical_path tr)
             in
             Float.abs (sum -. wall) <= 1e-9 *. Float.max 1.0 wall
             && List.for_all
                  (fun share ->
                    Critical_path.seconds share <= wall *. (1.0 +. 1e-9))
                  (Critical_path.by_element tr))
           (Rt.exemplars store))

(* ---------- continuous monitoring: rules, time series, alerts ---------- *)

module Rule = Adept_obs.Rule
module Timeseries = Adept_obs.Timeseries
module Alert = Adept_obs.Alert
module Dashboard = Adept_obs.Dashboard

(* The regression satellite: merging an empty snapshot used to widen the
   clamp bounds to the empty histogram's configuration, shifting the
   underflow bucket — merge with empty must be the identity. *)
let test_histogram_merge_empty_identity () =
  let h = Histogram.create ~min_value:1e-3 ~max_value:1e3 () in
  List.iter (Histogram.record h) [ 0.0; 0.5; 2.0 ] (* 0.0 underflows *);
  let s = Histogram.snapshot h in
  let empty =
    Histogram.snapshot (Histogram.create ~min_value:1e-9 ~max_value:1e9 ())
  in
  let check_same tag m =
    Alcotest.(check bool) (tag ^ " identical") true (same_snapshot m s);
    Alcotest.(check (option (float 0.0)))
      (tag ^ " underflow quantile unchanged")
      (Histogram.quantile s 10.0) (Histogram.quantile m 10.0)
  in
  check_same "s+empty" (Histogram.merge s empty);
  check_same "empty+s" (Histogram.merge empty s);
  let e2 = Histogram.merge empty empty in
  Alcotest.(check int) "empty+empty stays empty" 0 (Histogram.count e2)

let test_ring_retention_boundary () =
  let r = Ring.create ~retention:2.0 () in
  List.iter (fun t -> Ring.push r ~time:t t) [ 0.0; 1.0; 2.0; 3.0 ];
  (* prune drops time < latest - retention: the sample exactly at the
     cutoff stays *)
  Alcotest.(check (option (float 0.0))) "boundary sample retained" (Some 1.0)
    (Ring.oldest_time r);
  Alcotest.(check int) "window starting at the cutoff is answerable" 3
    (Ring.count_in r ~t0:1.0 ~t1:3.5);
  (* the guard is precise: a window that only misses never-pushed times
     is answerable, one that reaches a pruned sample is refused *)
  Alcotest.(check int) "window over never-pushed times answerable" 3
    (Ring.count_in r ~t0:0.5 ~t1:3.5);
  Alcotest.(check bool) "window reaching a pruned sample rejected" true
    (match Ring.count_in r ~t0:0.0 ~t1:3.5 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_ring_find_at_or_before () =
  let check_opt = Alcotest.(check (option (pair (float 0.0) (float 0.0)))) in
  let r = Ring.create ~retention:2.0 () in
  List.iter (fun t -> Ring.push r ~time:t (t *. 10.)) [ 0.0; 1.0; 2.0; 3.0 ];
  check_opt "exact hit" (Some (2.0, 20.0)) (Ring.find_at_or_before r ~time:2.0);
  check_opt "between samples" (Some (2.0, 20.0))
    (Ring.find_at_or_before r ~time:2.5);
  check_opt "after the latest" (Some (3.0, 30.0))
    (Ring.find_at_or_before r ~time:9.0);
  check_opt "pruned history is None" None (Ring.find_at_or_before r ~time:0.5);
  check_opt "empty ring is None" None
    (Ring.find_at_or_before (Ring.create ~retention:1.0 ()) ~time:1.0)

(* The exposition-format escaping satellite, pinned through the whole
   export path: backslash, double quote and newline in a label value. *)
let test_export_prometheus_escaping_pinned () =
  let reg = Registry.create () in
  let labels = Label.v [ ("path", "C:\\tmp\n\"x\"") ] in
  Counter.inc (Registry.counter reg ~labels "adept_escape_total");
  let text = Export.prometheus (Registry.snapshot reg) in
  Alcotest.(check bool) "escaped label value pinned" true
    (Astring.String.is_infix
       ~affix:"adept_escape_total{path=\"C:\\\\tmp\\n\\\"x\\\"\"}" text)

let test_rule_parse_roundtrip () =
  let text =
    "# comment lines and blanks are skipped\n\n\
     alert high-loss severity=critical for=2 when \
     rate(adept_requests_lost_total[5]) > 0.5\n\
     alert burn severity=warning when min(rate(m_total[1]), rate(m_total[10])) \
     > 2\n\
     alert mean-drift when abs(mean(adept_server_service_seconds{node=\"3\"}[4]) \
     / 0.25 - 1) > 0.5\n"
  in
  match Rule.parse text with
  | Error e -> Alcotest.fail e
  | Ok rules -> (
      Alcotest.(check int) "three rules" 3 (List.length rules);
      Alcotest.(check (list string)) "names"
        [ "high-loss"; "burn"; "mean-drift" ]
        (List.map (fun (r : Rule.t) -> r.Rule.name) rules);
      let printed = String.concat "\n" (List.map Rule.to_string rules) in
      match Rule.parse printed with
      | Error e -> Alcotest.fail ("reparse of printed rules: " ^ e)
      | Ok rules' ->
          Alcotest.(check (list string)) "print-parse fixpoint"
            (List.map Rule.to_string rules)
            (List.map Rule.to_string rules'))

let test_rule_parse_errors () =
  let bad s =
    match Rule.parse s with
    | Error e -> e
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
  in
  Alcotest.(check bool) "truncated rule names its line" true
    (Astring.String.is_infix ~affix:"line 1" (bad "alert a when last(x) >"));
  Alcotest.(check bool) "error after a comment names line 2" true
    (Astring.String.is_infix ~affix:"line 2"
       (bad "# fine\nalert b last(x) > 0"));
  Alcotest.(check bool) "unknown severity rejected" true
    (bad "alert a severity=loud when last(x) > 0" <> "");
  Alcotest.(check bool) "burn_rate wants short < long" true
    (match
       Rule.burn_rate "b" (Rule.selector "m_total") ~short:5.0 ~long:1.0
         ~bound:1.0
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_rule_selectors_dedup () =
  let sel = Rule.selector "adept_test_seconds" in
  let r =
    Rule.v "mean-vs-mean"
      (Rule.Window_mean (sel, 2.0))
      Rule.Gt
      (Rule.Window_mean (sel, 4.0))
  in
  (* Window_mean expands to Sum and Count sub-selectors, deduplicated
     across both windows *)
  Alcotest.(check int) "two sub-selectors" 2 (List.length (Rule.selectors r));
  Alcotest.(check (float 0.0)) "max window" 4.0 (Rule.max_window r)

let test_timeseries_scrape_and_eval () =
  let reg = Registry.create () in
  let c = Registry.counter reg "adept_flow_total" in
  let sel = Rule.selector "adept_flow_total" in
  let ts = Timeseries.create ~retention:10.0 [ sel ] in
  (* family missing entirely: gap, not zero *)
  let missing = Timeseries.create ~retention:10.0 [ Rule.selector "adept_nope" ] in
  Timeseries.scrape missing ~registry:reg ~now:0.0;
  Alcotest.(check (option (pair (float 0.0) (float 0.0))))
    "missing family records no sample" None
    (Timeseries.last missing (Rule.selector "adept_nope"));
  (* 2 req/s: +1 every 0.5 s *)
  for i = 0 to 10 do
    let now = 0.5 *. float_of_int i in
    if i > 0 then Counter.inc c;
    Timeseries.scrape ts ~registry:reg ~now
  done;
  Alcotest.(check int) "scrape count" 11 (Timeseries.scrapes ts);
  Alcotest.(check (option (float 1e-9))) "last value" (Some 10.0)
    (Option.map snd (Timeseries.last ts sel));
  Alcotest.(check (option (float 1e-9))) "rate over 2 s" (Some 2.0)
    (Timeseries.eval ts ~now:5.0 (Rule.Rate (sel, 2.0)));
  Alcotest.(check (option (float 1e-9))) "delta over 2 s" (Some 4.0)
    (Timeseries.eval ts ~now:5.0 (Rule.Delta (sel, 2.0)));
  Alcotest.(check (option (float 1e-9))) "window past history is None" None
    (Timeseries.eval ts ~now:0.0 (Rule.Rate (sel, 2.0)));
  Alcotest.(check (option (float 1e-9))) "division by zero is None" None
    (Timeseries.eval ts ~now:5.0 (Rule.Div (Rule.Const 1.0, Rule.Const 0.0)));
  Alcotest.(check (option (float 1e-9))) "arithmetic lifts" (Some 7.0)
    (Timeseries.eval ts ~now:5.0
       (Rule.Add (Rule.Rate (sel, 2.0), Rule.Const 5.0)))

let test_timeseries_label_subset_and_merge () =
  let reg = Registry.create () in
  let h node =
    Registry.histogram reg
      ~labels:(Label.v [ ("node", string_of_int node) ])
      "adept_part_seconds"
  in
  List.iter (Histogram.record (h 1)) [ 1.0; 1.0 ];
  List.iter (Histogram.record (h 2)) [ 5.0; 5.0 ];
  let one =
    Rule.selector ~stat:Rule.Count
      ~labels:(Label.v [ ("node", "1") ])
      "adept_part_seconds"
  in
  let all = Rule.selector ~stat:Rule.Count "adept_part_seconds" in
  let sum_all = Rule.selector ~stat:Rule.Sum "adept_part_seconds" in
  let ts = Timeseries.create ~retention:10.0 [ one; all; sum_all ] in
  Timeseries.scrape ts ~registry:reg ~now:0.0;
  Alcotest.(check (option (float 1e-9))) "subset matches one series" (Some 2.0)
    (Option.map snd (Timeseries.last ts one));
  Alcotest.(check (option (float 1e-9))) "empty matcher merges all" (Some 4.0)
    (Option.map snd (Timeseries.last ts all));
  Alcotest.(check (option (float 1e-9))) "merged sum" (Some 12.0)
    (Option.map snd (Timeseries.last ts sum_all))

(* A tiny synthetic loop: one gauge, one threshold rule with a 1 s hold.
   Exercises the full Inactive -> Pending -> Firing -> resolved cycle and
   the silent Pending reset. *)
let synthetic_alert () =
  let reg = Registry.create () in
  let g = Registry.gauge reg "adept_test_gauge" in
  let sel = Rule.selector "adept_test_gauge" in
  let rule =
    Rule.threshold ~severity:Rule.Critical ~for_duration:1.0 "hot" sel Rule.Gt
      10.0
  in
  let ts = Timeseries.create ~retention:10.0 (Rule.selectors rule) in
  let alerts =
    match Alert.create ~timeseries:ts [ rule ] with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  let step now v =
    Gauge.set g v;
    Timeseries.scrape ts ~registry:reg ~now;
    Alert.eval alerts ~now
  in
  (alerts, step)

let drive_synthetic step =
  step 0.0 5.0;
  step 0.5 20.0;
  step 1.0 20.0;
  step 1.5 20.0;
  (* held for 1.0 s -> fires *)
  step 2.0 5.0;
  (* resolves *)
  step 2.5 20.0;
  (* pending again ... *)
  step 3.0 5.0
(* ... and resets silently *)

let test_alert_state_machine () =
  let alerts, step = synthetic_alert () in
  step 0.0 5.0;
  Alcotest.(check bool) "inactive below bound" true
    (Alert.state alerts "hot" = Some Alert.Inactive);
  step 0.5 20.0;
  Alcotest.(check bool) "pending on first true" true
    (match Alert.state alerts "hot" with
    | Some (Alert.Pending since) -> since = 0.5
    | _ -> false);
  step 1.0 20.0;
  Alcotest.(check bool) "still pending under the hold" true
    (match Alert.state alerts "hot" with
    | Some (Alert.Pending _) -> true
    | _ -> false);
  Alcotest.(check (list string)) "no firing yet" []
    (Alert.firing_names alerts);
  step 1.5 20.0;
  Alcotest.(check bool) "fires once held for for_duration" true
    (match Alert.state alerts "hot" with
    | Some (Alert.Firing _) -> true
    | _ -> false);
  Alcotest.(check (list string)) "firing listed" [ "hot" ]
    (Alert.firing_names alerts);
  step 2.0 5.0;
  Alcotest.(check bool) "resolves when false" true
    (Alert.state alerts "hot" = Some Alert.Inactive);
  step 2.5 20.0;
  step 3.0 5.0;
  let edges =
    List.map
      (fun (tr : Alert.transition) ->
        match tr.Alert.edge with
        | Alert.To_pending -> "pending"
        | Alert.To_firing -> "firing"
        | Alert.To_resolved -> "resolved")
      (Alert.transitions alerts)
  in
  (* the second pending resets silently: no resolved edge for it *)
  Alcotest.(check (list string)) "edge log"
    [ "pending"; "firing"; "resolved"; "pending" ]
    edges;
  match Alert.firing_intervals alerts with
  | [ (r, fired, Some resolved) ] ->
      Alcotest.(check string) "interval rule" "hot" r.Rule.name;
      Alcotest.(check (float 0.0)) "fired at" 1.5 fired;
      Alcotest.(check (float 0.0)) "resolved at" 2.0 resolved
  | _ -> Alcotest.fail "expected exactly one closed firing interval"

let test_alert_burn_rate_two_windows () =
  let reg = Registry.create () in
  let c = Registry.counter reg "adept_burn_total" in
  let sel = Rule.selector "adept_burn_total" in
  let rule = Rule.burn_rate "burn" sel ~short:1.0 ~long:4.0 ~bound:5.0 in
  let ts = Timeseries.create ~retention:20.0 (Rule.selectors rule) in
  let alerts =
    match Alert.create ~timeseries:ts [ rule ] with
    | Ok a -> a
    | Error e -> Alcotest.fail e
  in
  let step now by =
    Counter.inc ~by c;
    Timeseries.scrape ts ~registry:reg ~now;
    Alert.eval alerts ~now
  in
  (* flat, then one short spike: the long window disagrees, no fire *)
  List.iter (fun i -> step (0.5 *. float_of_int i) 0.5) [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  step 4.0 10.0;
  step 4.5 0.5;
  Alcotest.(check (list string)) "short spike rides out" []
    (Alert.firing_names alerts);
  (* sustained burn: both windows agree, fires *)
  List.iter
    (fun i -> step (5.0 +. (0.5 *. float_of_int i)) 10.0)
    [ 0; 1; 2; 3; 4; 5; 6; 7 ];
  Alcotest.(check (list string)) "sustained burn fires" [ "burn" ]
    (Alert.firing_names alerts)

let test_alert_create_validation () =
  let sel = Rule.selector "adept_test_gauge" in
  let ts = Timeseries.create ~retention:1.0 [ sel ] in
  (match
     Alert.create ~timeseries:ts
       [ Rule.threshold "a" sel Rule.Gt 1.0; Rule.threshold "a" sel Rule.Lt 0.0 ]
   with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate rule names accepted");
  match
    Alert.create ~timeseries:ts [ Rule.v "w" (Rule.Rate (sel, 5.0)) Rule.Gt (Rule.Const 0.) ]
  with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "rule window beyond retention accepted"

(* Timeline exporters, pinned on the synthetic loop (deterministic). *)
let test_export_alert_timeline () =
  let alerts, step = synthetic_alert () in
  drive_synthetic step;
  let jsonl = Export.alert_timeline_jsonl alerts in
  let lines = String.split_on_char '\n' (String.trim jsonl) in
  Alcotest.(check int) "four transitions" 4 (List.length lines);
  Alcotest.(check string) "first line"
    "{\"at\":0.5,\"alert\":\"hot\",\"severity\":\"critical\",\"state\":\"pending\",\"value\":20}"
    (List.nth lines 0);
  Alcotest.(check string) "firing line"
    "{\"at\":1.5,\"alert\":\"hot\",\"severity\":\"critical\",\"state\":\"firing\",\"value\":20}"
    (List.nth lines 1);
  Alcotest.(check string) "resolved line"
    "{\"at\":2,\"alert\":\"hot\",\"severity\":\"critical\",\"state\":\"resolved\",\"value\":5}"
    (List.nth lines 2);
  let prom = Export.alerts_prom alerts in
  Alcotest.(check bool) "ALERTS firing sample" true
    (Astring.String.is_infix
       ~affix:
         "ALERTS{alertname=\"hot\",alertstate=\"firing\",severity=\"critical\"} 1 1500"
       prom);
  Alcotest.(check bool) "ALERTS resolved sample" true
    (Astring.String.is_infix
       ~affix:
         "ALERTS{alertname=\"hot\",alertstate=\"firing\",severity=\"critical\"} 0 2000"
       prom)

let test_dashboard_structural () =
  let alerts, step = synthetic_alert () in
  drive_synthetic step;
  let ts = Alert.timeseries alerts in
  let html =
    Dashboard.render ~timeseries:ts ~alerts
      [
        Dashboard.panel ~unit_:"units" "test gauge"
          [ ("gauge", Rule.Last (Rule.selector "adept_test_gauge")) ];
      ]
  in
  let has affix = Astring.String.is_infix ~affix html in
  Alcotest.(check bool) "full document" true
    (Astring.String.is_prefix ~affix:"<!DOCTYPE html>" html);
  Alcotest.(check bool) "inline svg" true (has "<svg");
  Alcotest.(check bool) "sparkline polyline" true (has "<polyline");
  Alcotest.(check bool) "alert band drawn" true (has "alert-band");
  Alcotest.(check bool) "alert table" true (has "class=\"alerts\"");
  Alcotest.(check bool) "no scripts" true (not (has "<script"));
  Alcotest.(check bool) "no external references" true (not (has "http"));
  Alcotest.(check string) "byte-identical re-render" html
    (Dashboard.render ~timeseries:ts ~alerts
       [
         Dashboard.panel ~unit_:"units" "test gauge"
           [ ("gauge", Rule.Last (Rule.selector "adept_test_gauge")) ];
       ]);
  (* an empty store still renders a complete document *)
  let empty =
    Dashboard.render
      ~timeseries:(Timeseries.create ~retention:1.0 [])
      [ Dashboard.panel "empty" [] ]
  in
  Alcotest.(check bool) "empty store renders" true
    (Astring.String.is_infix ~affix:"no scrapes recorded" empty)

(* ---------- golden Prometheus export ----------

   The Prometheus text export of a fixed-seed star run is pinned
   byte-for-byte in test/golden/observe_star.prom.  A mismatch means the
   exporter's format or the simulation's accounting changed: if
   intentional, regenerate with
     OBS_GOLDEN_OUT=test/golden/observe_star.prom dune exec test/test_obs.exe
   and mention the format break in the changelog. *)

let golden_export () =
  let _, _, s = observed_scenario () in
  let registry = Registry.create () in
  let _ = Scenario.run_fixed ~registry s ~clients:8 ~warmup:1.0 ~duration:2.0 in
  Export.prometheus (Registry.snapshot registry)

let read_golden name =
  (* dune materializes the golden deps next to the test executable *)
  let path = Filename.concat (Filename.dirname Sys.executable_name) name in
  In_channel.with_open_bin path In_channel.input_all

let test_golden_prometheus () =
  let got = golden_export () in
  Alcotest.(check string) "byte-identical across runs" got (golden_export ());
  Alcotest.(check string) "matches golden file"
    (read_golden "golden/observe_star.prom") got

(* The Chrome trace-event JSON and utilization-heat DOT of the same
   fixed-seed star run, pinned byte-for-byte.  Regenerate with
     OBS_GOLDEN_TRACE_DIR=test/golden dune exec test/test_obs.exe *)

let golden_trace_exports () =
  let platform, tree, registry, store, _ = traced_run () in
  let wapp = Adept_workload.Dgemm.(mflops (make 200)) in
  let predicted =
    Adept.Evaluate.bottleneck_element params
      ~bandwidth:(Platform.uniform_bandwidth platform) ~wapp tree
  in
  let attribution =
    Attribution.build ~store ~tree ~utilization:(utilization_of registry)
      ~predicted ()
  in
  (Export.chrome_trace store, Attribution.heat_dot attribution ~tree)

let test_golden_trace_exports () =
  let chrome, dot = golden_trace_exports () in
  let chrome', dot' = golden_trace_exports () in
  Alcotest.(check string) "chrome byte-identical across runs" chrome chrome';
  Alcotest.(check string) "heat dot byte-identical across runs" dot dot';
  Alcotest.(check string) "chrome matches golden"
    (read_golden "golden/trace_star.json") chrome;
  Alcotest.(check string) "heat dot matches golden"
    (read_golden "golden/trace_star_heat.dot") dot

let () =
  match Sys.getenv_opt "OBS_GOLDEN_OUT" with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (golden_export ()));
      Printf.printf "regenerated %s\n" path;
      exit 0
  | None -> ()

let () =
  match Sys.getenv_opt "OBS_GOLDEN_TRACE_DIR" with
  | Some dir ->
      let chrome, dot = golden_trace_exports () in
      List.iter
        (fun (name, text) ->
          let path = Filename.concat dir name in
          Out_channel.with_open_bin path (fun oc ->
              Out_channel.output_string oc text);
          Printf.printf "regenerated %s\n" path)
        [ ("trace_star.json", chrome); ("trace_star_heat.dot", dot) ];
      exit 0
  | None -> ()

let () =
  Alcotest.run "obs"
    [
      ( "label",
        [
          Alcotest.test_case "canonical" `Quick test_label_canonical;
          Alcotest.test_case "prometheus escaping" `Quick
            test_label_prometheus_escaping;
        ] );
      ( "histogram",
        [
          Alcotest.test_case "exact stats" `Quick test_histogram_exact_stats;
          Alcotest.test_case "edge values" `Quick test_histogram_edge_values;
          Alcotest.test_case "merge alpha mismatch" `Quick
            test_histogram_merge_alpha_mismatch;
          Alcotest.test_case "merge empty identity" `Quick
            test_histogram_merge_empty_identity;
          Alcotest.test_case "bounded buckets" `Quick test_histogram_bounded_buckets;
        ] );
      ( "ring",
        [
          Alcotest.test_case "window exact" `Quick test_ring_window_exact;
          Alcotest.test_case "prunes and guards" `Quick test_ring_prunes_and_guards;
          Alcotest.test_case "retention boundary" `Quick
            test_ring_retention_boundary;
          Alcotest.test_case "find at-or-before" `Quick
            test_ring_find_at_or_before;
        ] );
      ( "registry",
        [ Alcotest.test_case "get-or-create" `Quick test_registry_get_or_create ] );
      ( "tracer",
        [ Alcotest.test_case "spans and bound" `Quick test_tracer_spans_and_bound ] );
      ( "export",
        [
          Alcotest.test_case "prometheus format" `Quick test_export_prometheus_format;
          Alcotest.test_case "jsonl and csv" `Quick test_export_jsonl_and_csv;
          Alcotest.test_case "deterministic" `Quick test_export_deterministic;
          Alcotest.test_case "prometheus escaping pinned" `Quick
            test_export_prometheus_escaping_pinned;
          Alcotest.test_case "alert timeline" `Quick test_export_alert_timeline;
        ] );
      ( "rule",
        [
          Alcotest.test_case "parse roundtrip" `Quick test_rule_parse_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_rule_parse_errors;
          Alcotest.test_case "selectors dedup" `Quick test_rule_selectors_dedup;
        ] );
      ( "timeseries",
        [
          Alcotest.test_case "scrape and eval" `Quick
            test_timeseries_scrape_and_eval;
          Alcotest.test_case "label subset and merge" `Quick
            test_timeseries_label_subset_and_merge;
        ] );
      ( "alert",
        [
          Alcotest.test_case "state machine" `Quick test_alert_state_machine;
          Alcotest.test_case "burn rate two windows" `Quick
            test_alert_burn_rate_two_windows;
          Alcotest.test_case "create validation" `Quick
            test_alert_create_validation;
        ] );
      ( "dashboard",
        [ Alcotest.test_case "structural" `Quick test_dashboard_structural ] );
      ( "run-stats",
        [
          Alcotest.test_case "bounded memory at 10^6" `Quick
            test_run_stats_bounded_memory;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "bit-identical with obs" `Quick
            test_scenario_obs_bit_identical;
          Alcotest.test_case "counters consistent" `Quick
            test_scenario_obs_counters_consistent;
          Alcotest.test_case "report low deviation" `Quick test_report_low_deviation;
        ] );
      ( "request-trace",
        [
          Alcotest.test_case "reservoir keeps true top-N" `Quick
            test_rtrace_reservoir_top_n;
          Alcotest.test_case "sampling deterministic" `Quick
            test_rtrace_sampling_deterministic;
          Alcotest.test_case "span overflow drops" `Quick
            test_rtrace_span_overflow_drops;
          Alcotest.test_case "critical path tiles" `Quick
            test_rtrace_critical_path_tiles;
          Alcotest.test_case "attribution matches model" `Quick
            test_rtrace_attribution_matches_model;
          Alcotest.test_case "observation-only" `Quick test_rtrace_observation_only;
        ] );
      ( "golden",
        [
          Alcotest.test_case "prometheus export" `Quick test_golden_prometheus;
          Alcotest.test_case "trace exports" `Quick test_golden_trace_exports;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_histogram_quantile_bound;
            prop_histogram_merge_is_concat;
            prop_histogram_merge_commutes;
            prop_critical_path_accounts_response;
          ] );
    ]
