(* Tests for Adept_godiet: deployment plans, XML documents, launcher. *)

module Plan = Adept_godiet.Plan
module Writer = Adept_godiet.Writer
module Launcher = Adept_godiet.Launcher
module Tree = Adept_hierarchy.Tree
module Node = Adept_platform.Node
module Platform = Adept_platform.Platform

let params = Adept_model.Params.diet_lyon

let node i = Node.make ~id:i ~name:(Printf.sprintf "n%d" i) ~power:730.0 ()

let sample () =
  Tree.agent (node 0)
    [
      Tree.agent (node 1) [ Tree.server (node 3); Tree.server (node 4) ];
      Tree.server (node 2);
    ]

let platform () =
  Platform.create
    ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ())
    (List.init 5 node)

(* ---------- Plan ---------- *)

let test_plan_naming () =
  match Plan.of_tree (sample ()) with
  | Error e -> Alcotest.fail e
  | Ok plan ->
      let master = Plan.master plan in
      Alcotest.(check string) "master name" "MA" master.Plan.element_name;
      Alcotest.(check bool) "master kind" true (master.Plan.kind = Plan.Master_agent);
      Alcotest.(check (option string)) "master parentless" None master.Plan.parent_name;
      Alcotest.(check int) "agents incl master" 2 (List.length (Plan.agents plan));
      Alcotest.(check int) "servers" 3 (List.length (Plan.servers plan))

let test_plan_parent_links () =
  let plan = Result.get_ok (Plan.of_tree (sample ())) in
  let sed =
    List.find
      (fun e -> Node.id e.Plan.host = 3)
      (Plan.servers plan)
  in
  Alcotest.(check (option string)) "server under A-1" (Some "A-1") sed.Plan.parent_name

let test_plan_launch_order () =
  let plan = Result.get_ok (Plan.of_tree (sample ())) in
  let order = Plan.launch_order plan in
  let index name =
    let rec go i = function
      | [] -> -1
      | e :: rest -> if e.Plan.element_name = name then i else go (i + 1) rest
    in
    go 0 order
  in
  Alcotest.(check bool) "MA before A-1" true (index "MA" < index "A-1");
  Alcotest.(check bool) "A-1 before its servers" true (index "A-1" < index "SeD-1")

let test_plan_find () =
  let plan = Result.get_ok (Plan.of_tree (sample ())) in
  Alcotest.(check bool) "find MA" true (Plan.find plan "MA" <> None);
  Alcotest.(check bool) "find missing" true (Plan.find plan "nope" = None)

let test_plan_rejects_invalid () =
  Alcotest.(check bool) "server root rejected" true
    (Result.is_error (Plan.of_tree (Tree.server (node 0))))

(* ---------- Writer ---------- *)

let test_writer_document_structure () =
  let doc = Writer.document (platform ()) (sample ()) in
  List.iter
    (fun affix ->
      Alcotest.(check bool) affix true (Astring.String.is_infix ~affix doc))
    [
      "<godiet_deployment>"; "<resources>"; "compute_node"; "<link";
      "<diet_hierarchy>"; "master_agent"; "</godiet_deployment>";
    ]

let test_writer_parse_roundtrip () =
  let tree = sample () in
  let doc = Writer.document (platform ()) tree in
  match Writer.parse_document doc with
  | Error e -> Alcotest.fail e
  | Ok shape ->
      Alcotest.(check int) "size" (Tree.size tree) (Tree.size shape);
      Alcotest.(check (list string)) "names"
        (List.map Node.name (Tree.nodes tree))
        (List.map Node.name (Tree.nodes shape))

let test_writer_load_deployment_roundtrip () =
  let tree = sample () in
  let p = platform () in
  let doc = Writer.document p tree in
  match Writer.load_deployment doc with
  | Error e -> Alcotest.fail e
  | Ok (p', tree') ->
      Alcotest.(check int) "platform size" (Platform.size p) (Platform.size p');
      List.iter2
        (fun a b ->
          Alcotest.(check bool) "node preserved" true (Adept_platform.Node.equal a b))
        (Platform.nodes p) (Platform.nodes p');
      Alcotest.(check (float 0.0)) "bandwidth preserved" 100.0
        (Platform.uniform_bandwidth p');
      Alcotest.(check bool) "tree identical" true (Tree.equal tree tree')

let test_writer_parse_resources_errors () =
  Alcotest.(check bool) "no nodes" true
    (Result.is_error (Writer.parse_resources "<godiet_deployment></godiet_deployment>"));
  Alcotest.(check bool) "no link" true
    (Result.is_error
       (Writer.parse_resources "<resources><compute_node name=\"a\" power=\"1\"/></resources>"));
  Alcotest.(check bool) "bad power" true
    (Result.is_error
       (Writer.parse_resources
          "<resources><compute_node name=\"a\" power=\"x\"/><link bandwidth=\"10\"/></resources>"))

let test_writer_hetero_platform_rejected () =
  let rng = Adept_util.Rng.create 2 in
  let two =
    Adept_platform.Generator.two_sites ~rng ~n_orsay:2 ~n_lyon:2 ~wan_bandwidth:10.0 ()
  in
  let tree =
    Tree.star (Platform.node two 0)
      [ Platform.node two 1; Platform.node two 2; Platform.node two 3 ]
  in
  let doc = Writer.document two tree in
  Alcotest.(check bool) "heterogeneous links not round-trippable" true
    (Result.is_error (Writer.parse_resources doc))

let test_writer_parse_garbage () =
  Alcotest.(check bool) "no hierarchy section" true
    (Result.is_error (Writer.parse_document "<godiet_deployment></godiet_deployment>"));
  Alcotest.(check bool) "empty" true (Result.is_error (Writer.parse_document ""))

(* ---------- golden files ----------

   The serialized form of the fixed 5-node plan is pinned byte-for-byte in
   test/golden/*.xml (declared as test deps in test/dune).  A mismatch
   means the on-disk XML format changed: if intentional, regenerate the
   goldens from Writer.document / Xml.to_string and mention the format
   break in the changelog. *)

let read_golden name =
  (* dune materializes the golden deps next to the test executable; resolve
     from there so `dune exec test/test_godiet.exe` works from any cwd *)
  let path = Filename.concat (Filename.dirname Sys.executable_name) name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_writer_golden_deployment () =
  Alcotest.(check string) "GoDIET deployment XML is byte-stable"
    (read_golden "golden/deployment_5node.xml")
    (Writer.document (platform ()) (sample ()))

let test_hierarchy_xml_golden () =
  Alcotest.(check string) "hierarchy XML is byte-stable"
    (read_golden "golden/hierarchy_5node.xml")
    (Adept_hierarchy.Xml.to_string (sample ()))

(* ---------- Launcher ---------- *)

let test_launcher_ready_time () =
  let engine = Adept_sim.Engine.create () in
  let plan = Result.get_ok (Plan.of_tree (sample ())) in
  let launched =
    Launcher.launch ~element_delay:0.5 ~engine ~params ~platform:(platform ()) plan
  in
  Alcotest.(check int) "elements" 5 launched.Launcher.launched_elements;
  Alcotest.(check (float 1e-9)) "ready at 2.5s" 2.5 launched.Launcher.ready_at

let test_launcher_xml_end_to_end () =
  let engine = Adept_sim.Engine.create () in
  let tree = sample () in
  let xml = Adept_hierarchy.Xml.to_string tree in
  match Launcher.launch_xml ~engine ~params ~platform:(platform ()) xml with
  | Error e -> Alcotest.fail e
  | Ok launched ->
      let m = launched.Launcher.middleware in
      let completed = ref false in
      Adept_sim.Middleware.submit m ~wapp:16.0
        ~on_scheduled:(fun ~server ->
          Adept_sim.Middleware.request_service m ~server ~wapp:16.0
            ~on_done:(fun () -> completed := true)
            ())
        ();
      ignore (Adept_sim.Engine.run engine);
      Alcotest.(check bool) "request completed through launched hierarchy" true !completed

let test_launcher_bad_xml () =
  let engine = Adept_sim.Engine.create () in
  Alcotest.(check bool) "bad xml" true
    (Result.is_error
       (Launcher.launch_xml ~engine ~params ~platform:(platform ()) "<nope/>"))

let test_launcher_unknown_host () =
  let engine = Adept_sim.Engine.create () in
  let foreign =
    Tree.star (Node.make ~id:0 ~name:"stranger" ~power:1.0 ()) [ node 1 ]
  in
  let xml = Adept_hierarchy.Xml.to_string foreign in
  Alcotest.(check bool) "unknown host" true
    (Result.is_error (Launcher.launch_xml ~engine ~params ~platform:(platform ()) xml))

(* ---------- staged launch ---------- *)

let big_star n =
  let nodes = List.init n node in
  let platform =
    Platform.create ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ()) nodes
  in
  (platform, Tree.star (List.hd nodes) (List.tl nodes))

let test_staged_no_failures () =
  let platform, tree = big_star 6 in
  let plan = Result.get_ok (Plan.of_tree tree) in
  let engine = Adept_sim.Engine.create () in
  let rng = Adept_util.Rng.create 1 in
  match Launcher.launch_staged ~rng ~engine ~params ~platform plan with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      Alcotest.(check int) "one attempt per element" 6 outcome.Launcher.attempts;
      Alcotest.(check (list string)) "nothing dropped" [] outcome.Launcher.dropped_servers;
      Alcotest.(check (option string)) "no abort" None outcome.Launcher.aborted_on;
      let deployment = Option.get outcome.Launcher.deployment in
      Alcotest.(check (float 1e-9)) "ready after 6 launches" 3.0
        deployment.Launcher.ready_at

let test_staged_server_losses_survivable () =
  let platform, tree = big_star 12 in
  let plan = Result.get_ok (Plan.of_tree tree) in
  let engine = Adept_sim.Engine.create () in
  (* seed chosen so some servers fail but the master agent survives *)
  let rec find_survivable seed =
    if seed > 200 then Alcotest.fail "no seed drops a server without killing the MA"
    else begin
      let engine = Adept_sim.Engine.create () in
      let rng = Adept_util.Rng.create seed in
      let policy =
        { Launcher.element_delay = 0.1; failure_probability = 0.3; max_retries = 0 }
      in
      match Launcher.launch_staged ~policy ~rng ~engine ~params ~platform plan with
      | Ok ({ Launcher.deployment = Some _; dropped_servers = _ :: _; _ } as o) -> o
      | Ok _ | Error _ -> find_survivable (seed + 1)
    end
  in
  ignore engine;
  let outcome = find_survivable 0 in
  let deployment = Option.get outcome.Launcher.deployment in
  (* the surviving middleware still serves requests *)
  let m = deployment.Launcher.middleware in
  Alcotest.(check bool) "servers remain" true
    (Adept_sim.Middleware.server_ids m <> []);
  Alcotest.(check bool) "fewer elements than planned" true
    (deployment.Launcher.launched_elements < 12)

let test_staged_agent_loss_aborts () =
  let platform, tree = big_star 4 in
  let plan = Result.get_ok (Plan.of_tree tree) in
  (* probability ~1 - epsilon: first element (the master agent) fails *)
  let engine = Adept_sim.Engine.create () in
  let rng = Adept_util.Rng.create 1 in
  let policy =
    { Launcher.element_delay = 0.1; failure_probability = 0.99; max_retries = 1 }
  in
  match Launcher.launch_staged ~policy ~rng ~engine ~params ~platform plan with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      Alcotest.(check (option string)) "aborted on the master" (Some "MA")
        outcome.Launcher.aborted_on;
      Alcotest.(check bool) "no deployment" true (outcome.Launcher.deployment = None)

let test_staged_retries_help () =
  (* with generous retries even a flaky platform comes fully up *)
  let platform, tree = big_star 8 in
  let plan = Result.get_ok (Plan.of_tree tree) in
  let engine = Adept_sim.Engine.create () in
  let rng = Adept_util.Rng.create 7 in
  let policy =
    { Launcher.element_delay = 0.1; failure_probability = 0.3; max_retries = 50 }
  in
  match Launcher.launch_staged ~policy ~rng ~engine ~params ~platform plan with
  | Error e -> Alcotest.fail e
  | Ok outcome ->
      Alcotest.(check (option string)) "no abort" None outcome.Launcher.aborted_on;
      Alcotest.(check (list string)) "nothing dropped" [] outcome.Launcher.dropped_servers;
      Alcotest.(check bool) "retries consumed attempts" true
        (outcome.Launcher.attempts > 8)

let test_staged_policy_validation () =
  let platform, tree = big_star 4 in
  let plan = Result.get_ok (Plan.of_tree tree) in
  let engine = Adept_sim.Engine.create () in
  let rng = Adept_util.Rng.create 1 in
  let bad = { Launcher.element_delay = 0.1; failure_probability = 1.0; max_retries = 0 } in
  Alcotest.(check bool) "p = 1 rejected" true
    (Result.is_error (Launcher.launch_staged ~policy:bad ~rng ~engine ~params ~platform plan))

let () =
  Alcotest.run "godiet"
    [
      ( "plan",
        [
          Alcotest.test_case "naming" `Quick test_plan_naming;
          Alcotest.test_case "parent links" `Quick test_plan_parent_links;
          Alcotest.test_case "launch order" `Quick test_plan_launch_order;
          Alcotest.test_case "find" `Quick test_plan_find;
          Alcotest.test_case "rejects invalid" `Quick test_plan_rejects_invalid;
        ] );
      ( "writer",
        [
          Alcotest.test_case "document structure" `Quick test_writer_document_structure;
          Alcotest.test_case "parse roundtrip" `Quick test_writer_parse_roundtrip;
          Alcotest.test_case "load deployment roundtrip" `Quick
            test_writer_load_deployment_roundtrip;
          Alcotest.test_case "parse resources errors" `Quick
            test_writer_parse_resources_errors;
          Alcotest.test_case "hetero platform rejected" `Quick
            test_writer_hetero_platform_rejected;
          Alcotest.test_case "parse garbage" `Quick test_writer_parse_garbage;
          Alcotest.test_case "golden deployment xml" `Quick test_writer_golden_deployment;
          Alcotest.test_case "golden hierarchy xml" `Quick test_hierarchy_xml_golden;
        ] );
      ( "launcher",
        [
          Alcotest.test_case "ready time" `Quick test_launcher_ready_time;
          Alcotest.test_case "xml end to end" `Quick test_launcher_xml_end_to_end;
          Alcotest.test_case "bad xml" `Quick test_launcher_bad_xml;
          Alcotest.test_case "unknown host" `Quick test_launcher_unknown_host;
        ] );
      ( "staged-launch",
        [
          Alcotest.test_case "no failures" `Quick test_staged_no_failures;
          Alcotest.test_case "server losses survivable" `Quick
            test_staged_server_losses_survivable;
          Alcotest.test_case "agent loss aborts" `Quick test_staged_agent_loss_aborts;
          Alcotest.test_case "retries help" `Quick test_staged_retries_help;
          Alcotest.test_case "policy validation" `Quick test_staged_policy_validation;
        ] );
    ]
