(* Tests for Adept_hierarchy: trees, validation, adjacency matrices, XML,
   DOT, metrics. *)

open Adept_hierarchy
module Node = Adept_platform.Node
module Platform = Adept_platform.Platform
module Rng = Adept_util.Rng

let node i = Node.make ~id:i ~name:(Printf.sprintf "n%d" i) ~power:(100.0 +. float_of_int i) ()

let nodes n = List.init n node

(* a0( a1(s3 s4) s2 ) *)
let sample () =
  Tree.agent (node 0)
    [ Tree.agent (node 1) [ Tree.server (node 3); Tree.server (node 4) ];
      Tree.server (node 2) ]

(* ---------- Tree ---------- *)

let test_tree_counts () =
  let t = sample () in
  Alcotest.(check int) "size" 5 (Tree.size t);
  Alcotest.(check int) "agents" 2 (Tree.agent_count t);
  Alcotest.(check int) "servers" 3 (Tree.server_count t);
  Alcotest.(check int) "depth" 2 (Tree.depth t);
  Alcotest.(check int) "root degree" 2 (Tree.degree t)

let test_tree_lists_preorder () =
  let t = sample () in
  Alcotest.(check (list int)) "nodes preorder" [ 0; 1; 3; 4; 2 ]
    (List.map Node.id (Tree.nodes t));
  Alcotest.(check (list int)) "agents" [ 0; 1 ] (List.map Node.id (Tree.agents t));
  Alcotest.(check (list int)) "servers" [ 3; 4; 2 ] (List.map Node.id (Tree.servers t))

let test_tree_agents_with_degree () =
  Alcotest.(check (list (pair int int))) "degrees" [ (0, 2); (1, 2) ]
    (List.map (fun (n, d) -> (Node.id n, d)) (Tree.agents_with_degree (sample ())))

let test_tree_parent_of () =
  let t = sample () in
  Alcotest.(check (option int)) "parent of 3" (Some 1)
    (Option.map Node.id (Tree.parent_of t 3));
  Alcotest.(check (option int)) "parent of 2" (Some 0)
    (Option.map Node.id (Tree.parent_of t 2));
  Alcotest.(check (option int)) "root has none" None
    (Option.map Node.id (Tree.parent_of t 0));
  Alcotest.(check (option int)) "absent" None (Option.map Node.id (Tree.parent_of t 9))

let test_tree_mem () =
  let t = sample () in
  Alcotest.(check bool) "member" true (Tree.mem t 4);
  Alcotest.(check bool) "not member" false (Tree.mem t 7)

let test_tree_star () =
  let t = Tree.star (node 0) [ node 1; node 2 ] in
  Alcotest.(check int) "depth 1" 1 (Tree.depth t);
  Alcotest.check_raises "empty server list" (Invalid_argument "Tree.star: empty server list")
    (fun () -> ignore (Tree.star (node 0) []))

let test_tree_fold () =
  let t = sample () in
  let sum = Tree.fold ~agent:(fun _ xs -> 1 + List.fold_left ( + ) 0 xs) ~server:(fun _ -> 1) t in
  Alcotest.(check int) "fold counts nodes" 5 sum

let test_tree_equal () =
  Alcotest.(check bool) "equal" true (Tree.equal (sample ()) (sample ()));
  Alcotest.(check bool) "order matters" false
    (Tree.equal
       (Tree.star (node 0) [ node 1; node 2 ])
       (Tree.star (node 0) [ node 2; node 1 ]))

let test_tree_single_server_depth () =
  Alcotest.(check int) "lone server depth" 0 (Tree.depth (Tree.server (node 0)))

let test_tree_normalize_demotes () =
  (* non-root agent with one child: demoted, child spliced up *)
  let t = Tree.agent (node 0) [ Tree.agent (node 1) [ Tree.server (node 2) ] ] in
  let n = Tree.normalize t in
  Alcotest.(check bool) "valid after normalize" true (Validate.is_valid n);
  Alcotest.(check int) "same node count" 3 (Tree.size n);
  Alcotest.(check int) "only the root remains an agent" 1 (Tree.agent_count n);
  (* childless non-root agent becomes a server in place *)
  let t2 = Tree.agent (node 0) [ Tree.agent (node 1) []; Tree.server (node 2) ] in
  let n2 = Tree.normalize t2 in
  Alcotest.(check bool) "valid" true (Validate.is_valid n2);
  Alcotest.(check int) "agent 1 demoted" 2 (Tree.server_count n2)

let test_tree_normalize_idempotent () =
  let t = sample () in
  Alcotest.(check bool) "already-valid tree unchanged" true
    (Tree.equal t (Tree.normalize t));
  let messy = Tree.agent (node 0) [ Tree.agent (node 1) [ Tree.server (node 2) ] ] in
  let once = Tree.normalize messy in
  Alcotest.(check bool) "idempotent" true (Tree.equal once (Tree.normalize once))

let test_tree_normalize_cascade () =
  (* a chain of single-child agents collapses fully *)
  let t =
    Tree.agent (node 0)
      [ Tree.agent (node 1) [ Tree.agent (node 2) [ Tree.server (node 3) ] ] ]
  in
  let n = Tree.normalize t in
  Alcotest.(check bool) "valid" true (Validate.is_valid n);
  Alcotest.(check int) "root keeps everything" 4 (Tree.size n)

(* ---------- Validate ---------- *)

let test_validate_ok () =
  Alcotest.(check bool) "sample valid" true (Validate.is_valid (sample ()))

let test_validate_root_server () =
  match Validate.errors (Tree.server (node 0)) with
  | Validate.Root_is_server _ :: _ -> ()
  | _ -> Alcotest.fail "expected Root_is_server"

let test_validate_root_no_children () =
  match Validate.errors (Tree.agent (node 0) []) with
  | Validate.Root_has_no_children _ :: _ -> ()
  | _ -> Alcotest.fail "expected Root_has_no_children"

let test_validate_undersized_agent () =
  let t = Tree.agent (node 0) [ Tree.agent (node 1) [ Tree.server (node 2) ] ] in
  Alcotest.(check bool) "undersized flagged" true
    (List.exists
       (function Validate.Undersized_agent (n, 1) -> Node.id n = 1 | _ -> false)
       (Validate.errors t))

let test_validate_duplicate () =
  let t = Tree.star (node 0) [ node 1; node 1 ] in
  Alcotest.(check bool) "duplicate flagged" true
    (List.exists
       (function Validate.Duplicate_node _ -> true | _ -> false)
       (Validate.errors t))

let test_validate_unknown_node () =
  let platform = Platform.of_powers [ 10.0; 20.0 ] in
  let t = Tree.star (node 0) [ node 5 ] in
  Alcotest.(check bool) "unknown flagged" true
    (List.exists
       (function Validate.Unknown_node _ -> true | _ -> false)
       (Validate.errors ~platform t))

let test_validate_platform_match () =
  let platform = Platform.of_powers [ 10.0; 20.0 ] in
  let a = Platform.node platform 0 and s = Platform.node platform 1 in
  Alcotest.(check bool) "matching nodes accepted" true
    (Validate.is_valid ~platform (Tree.star a [ s ]))

let test_validate_error_strings () =
  List.iter
    (fun e -> Alcotest.(check bool) "non-empty message" true (Validate.error_to_string e <> ""))
    (Validate.errors (Tree.server (node 0)))

(* ---------- Adjacency ---------- *)

let test_adjacency_of_tree () =
  let m = Adjacency.of_tree ~n:5 (sample ()) in
  Alcotest.(check bool) "0->1" true m.(0).(1);
  Alcotest.(check bool) "0->2" true m.(0).(2);
  Alcotest.(check bool) "1->3" true m.(1).(3);
  Alcotest.(check bool) "1->4" true m.(1).(4);
  Alcotest.(check int) "edges" 4 (Adjacency.edge_count m)

let test_adjacency_parents_used () =
  let m = Adjacency.of_tree ~n:6 (sample ()) in
  let parents = Adjacency.parents m in
  Alcotest.(check (option int)) "parent of 4" (Some 1) parents.(4);
  Alcotest.(check (option int)) "root parentless" None parents.(0);
  let used = Adjacency.used m in
  Alcotest.(check bool) "node 5 unused" false used.(5);
  Alcotest.(check bool) "node 0 used" true used.(0)

let test_adjacency_roundtrip () =
  let platform = Platform.create (nodes 5) in
  let t = sample () in
  let m = Adjacency.of_tree ~n:5 t in
  match Adjacency.to_tree platform m with
  | Ok t' -> Alcotest.(check bool) "roundtrip" true (Tree.equal t t')
  | Error e -> Alcotest.fail e

let test_adjacency_errors () =
  let platform = Platform.create (nodes 3) in
  let empty = Array.make_matrix 3 3 false in
  (match Adjacency.to_tree platform empty with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "empty matrix should fail");
  let two_parents = Array.make_matrix 3 3 false in
  two_parents.(0).(2) <- true;
  two_parents.(1).(2) <- true;
  (match Adjacency.to_tree platform two_parents with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "two parents should fail");
  let cycle = Array.make_matrix 3 3 false in
  cycle.(0).(1) <- true;
  cycle.(1).(0) <- true;
  (match Adjacency.to_tree platform cycle with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "cycle should fail")

let test_adjacency_out_of_range () =
  Alcotest.(check bool) "id beyond n" true
    (match Adjacency.of_tree ~n:2 (sample ()) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Xml ---------- *)

let test_xml_roundtrip_shape () =
  let t = sample () in
  match Xml.of_string (Xml.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check int) "same size" (Tree.size t) (Tree.size t');
      Alcotest.(check int) "same depth" (Tree.depth t) (Tree.depth t');
      Alcotest.(check (list string)) "same names in order"
        (List.map Node.name (Tree.nodes t))
        (List.map Node.name (Tree.nodes t'))

let test_xml_roundtrip_on_platform () =
  let platform = Platform.create (nodes 5) in
  let t = sample () in
  match Xml.of_string_on platform (Xml.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' -> Alcotest.(check bool) "identical with ids" true (Tree.equal t t')

let test_xml_escaping () =
  let weird = Node.make ~id:0 ~name:"a<b>&\"c" ~power:10.0 () in
  let t = Tree.star weird [ node 1 ] in
  match Xml.of_string (Xml.to_string t) with
  | Error e -> Alcotest.fail e
  | Ok t' ->
      Alcotest.(check string) "escaped name survives" "a<b>&\"c"
        (Node.name (Tree.root_node t'))

let test_xml_unknown_host () =
  let platform = Platform.create (nodes 2) in
  let foreign =
    Tree.star (Node.make ~id:0 ~name:"stranger" ~power:1.0 ()) [ node 1 ]
  in
  match Xml.of_string_on platform (Xml.to_string foreign) with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "unknown host should fail"

let test_xml_power_mismatch () =
  let platform = Platform.create (nodes 2) in
  let lying = Tree.star (Node.make ~id:0 ~name:"n0" ~power:999.0 ()) [ node 1 ] in
  match Xml.of_string_on platform (Xml.to_string lying) with
  | Error e ->
      Alcotest.(check bool) "mentions mismatch" true
        (Astring.String.is_infix ~affix:"mismatch" e)
  | Ok _ -> Alcotest.fail "power mismatch should fail"

let test_xml_malformed () =
  List.iter
    (fun text ->
      match Xml.of_string text with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail ("should not parse: " ^ text))
    [
      "";
      "<diet_hierarchy>";
      "<diet_hierarchy></diet_hierarchy>";
      "<diet_hierarchy><master_agent host=\"a\" power=\"1\"></master_agent></diet_hierarchy>";
      "<diet_hierarchy><master_agent host=\"a\"><server host=\"b\" power=\"1\"/></master_agent></diet_hierarchy>";
    ]

let test_xml_file_io () =
  let t = sample () in
  let path = Filename.temp_file "adept_xml" ".xml" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Xml.save t path;
      match Xml.load path with
      | Ok t' -> Alcotest.(check int) "size" 5 (Tree.size t')
      | Error e -> Alcotest.fail e)

(* ---------- Dot ---------- *)

let test_dot_output () =
  let text = Dot.to_string (sample ()) in
  Alcotest.(check bool) "digraph" true (Astring.String.is_prefix ~affix:"digraph" text);
  Alcotest.(check bool) "edge 0->1" true (Astring.String.is_infix ~affix:"n0 -> n1" text);
  Alcotest.(check bool) "box for agents" true (Astring.String.is_infix ~affix:"box" text);
  Alcotest.(check bool) "ellipse for servers" true
    (Astring.String.is_infix ~affix:"ellipse" text)

(* The DOT rendering of the fixed 5-node plan is pinned byte-for-byte in
   test/golden/hierarchy_5node.dot (a test dep in test/dune).  A mismatch
   means the Graphviz export changed shape: if intentional, regenerate the
   golden from Dot.to_string and mention it in the changelog. *)
let read_golden name =
  let path = Filename.concat (Filename.dirname Sys.executable_name) name in
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let test_dot_golden () =
  Alcotest.(check string) "DOT export is byte-stable"
    (read_golden "golden/hierarchy_5node.dot")
    (Dot.to_string (sample ()))

(* ---------- Metrics ---------- *)

let test_metrics () =
  let m = Metrics.of_tree (sample ()) in
  Alcotest.(check int) "nodes" 5 m.Metrics.nodes;
  Alcotest.(check int) "agents" 2 m.Metrics.agents;
  Alcotest.(check int) "depth" 2 m.Metrics.depth;
  Alcotest.(check int) "max degree" 2 m.Metrics.max_degree;
  Alcotest.(check (list int)) "levels" [ 1; 2; 2 ] m.Metrics.level_sizes

let test_metrics_histogram () =
  Alcotest.(check (list (pair int int))) "histogram" [ (2, 2) ]
    (Metrics.degree_histogram (sample ()))

let test_metrics_describe () =
  Alcotest.(check bool) "describe non-empty" true
    (String.length (Metrics.describe (sample ())) > 0)

(* ---------- properties ---------- *)

let random_tree_arb =
  QCheck.make
    ~print:(fun (seed, n) -> Printf.sprintf "seed=%d n=%d" seed n)
    QCheck.Gen.(pair (0 -- 10_000) (2 -- 25))

let random_tree (seed, n) =
  let rng = Rng.create seed in
  match Adept.Baselines.random ~rng (nodes n) with
  | Ok t -> t
  | Error e -> failwith e

let prop_random_trees_valid =
  QCheck.Test.make ~count:300 ~name:"random hierarchies validate" random_tree_arb
    (fun input -> Validate.is_valid (random_tree input))

let prop_adjacency_roundtrip =
  QCheck.Test.make ~count:200 ~name:"adjacency matrix round-trips" random_tree_arb
    (fun ((_, n) as input) ->
      let t = random_tree input in
      let platform = Platform.create (nodes n) in
      match Adjacency.to_tree platform (Adjacency.of_tree ~n t) with
      | Ok t' ->
          (* child order may change (ascending id), so compare as sets *)
          let ids tree = List.sort Int.compare (List.map Node.id (Tree.nodes tree)) in
          ids t = ids t'
          && Tree.agent_count t = Tree.agent_count t'
          && Tree.depth t = Tree.depth t'
      | Error _ -> false)

let prop_xml_roundtrip =
  QCheck.Test.make ~count:200 ~name:"xml round-trips on platform" random_tree_arb
    (fun ((_, n) as input) ->
      let t = random_tree input in
      let platform = Platform.create (nodes n) in
      match Xml.of_string_on platform (Xml.to_string t) with
      | Ok t' -> Tree.equal t t'
      | Error _ -> false)

let prop_counts_consistent =
  QCheck.Test.make ~count:300 ~name:"agents + servers = size" random_tree_arb
    (fun input ->
      let t = random_tree input in
      Tree.agent_count t + Tree.server_count t = Tree.size t)

let () =
  Alcotest.run "hierarchy"
    [
      ( "tree",
        [
          Alcotest.test_case "counts" `Quick test_tree_counts;
          Alcotest.test_case "preorder lists" `Quick test_tree_lists_preorder;
          Alcotest.test_case "agents with degree" `Quick test_tree_agents_with_degree;
          Alcotest.test_case "parent_of" `Quick test_tree_parent_of;
          Alcotest.test_case "mem" `Quick test_tree_mem;
          Alcotest.test_case "star" `Quick test_tree_star;
          Alcotest.test_case "fold" `Quick test_tree_fold;
          Alcotest.test_case "equal" `Quick test_tree_equal;
          Alcotest.test_case "lone server depth" `Quick test_tree_single_server_depth;
          Alcotest.test_case "normalize demotes" `Quick test_tree_normalize_demotes;
          Alcotest.test_case "normalize idempotent" `Quick test_tree_normalize_idempotent;
          Alcotest.test_case "normalize cascade" `Quick test_tree_normalize_cascade;
        ] );
      ( "validate",
        [
          Alcotest.test_case "valid sample" `Quick test_validate_ok;
          Alcotest.test_case "root server" `Quick test_validate_root_server;
          Alcotest.test_case "root without children" `Quick test_validate_root_no_children;
          Alcotest.test_case "undersized agent" `Quick test_validate_undersized_agent;
          Alcotest.test_case "duplicate node" `Quick test_validate_duplicate;
          Alcotest.test_case "unknown node" `Quick test_validate_unknown_node;
          Alcotest.test_case "platform match" `Quick test_validate_platform_match;
          Alcotest.test_case "error strings" `Quick test_validate_error_strings;
        ] );
      ( "adjacency",
        [
          Alcotest.test_case "of_tree" `Quick test_adjacency_of_tree;
          Alcotest.test_case "parents/used" `Quick test_adjacency_parents_used;
          Alcotest.test_case "roundtrip" `Quick test_adjacency_roundtrip;
          Alcotest.test_case "errors" `Quick test_adjacency_errors;
          Alcotest.test_case "out of range" `Quick test_adjacency_out_of_range;
        ] );
      ( "xml",
        [
          Alcotest.test_case "roundtrip shape" `Quick test_xml_roundtrip_shape;
          Alcotest.test_case "roundtrip on platform" `Quick test_xml_roundtrip_on_platform;
          Alcotest.test_case "escaping" `Quick test_xml_escaping;
          Alcotest.test_case "unknown host" `Quick test_xml_unknown_host;
          Alcotest.test_case "power mismatch" `Quick test_xml_power_mismatch;
          Alcotest.test_case "malformed inputs" `Quick test_xml_malformed;
          Alcotest.test_case "file io" `Quick test_xml_file_io;
        ] );
      ( "dot",
        [
          Alcotest.test_case "output" `Quick test_dot_output;
          Alcotest.test_case "golden" `Quick test_dot_golden;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "basic" `Quick test_metrics;
          Alcotest.test_case "histogram" `Quick test_metrics_histogram;
          Alcotest.test_case "describe" `Quick test_metrics_describe;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_random_trees_valid;
            prop_adjacency_roundtrip;
            prop_xml_roundtrip;
            prop_counts_consistent;
          ] );
    ]
