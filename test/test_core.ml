(* Tests for the core planner library: scheduling/service power, model
   evaluation, baselines, the heuristic, the homogeneous optimal planner,
   the exhaustive oracle and the unified planner. *)

open Adept
module Params = Adept_model.Params
module Demand = Adept_model.Demand
module Node = Adept_platform.Node
module Platform = Adept_platform.Platform
module Generator = Adept_platform.Generator
module Tree = Adept_hierarchy.Tree
module Validate = Adept_hierarchy.Validate
module Metrics = Adept_hierarchy.Metrics
module Rng = Adept_util.Rng

let params = Params.diet_lyon

let b = 100.0

let dgemm n = Adept_workload.Dgemm.(mflops (make n))

let check_close ?(eps = 1e-9) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

let node ?(power = 730.0) i = Node.make ~id:i ~name:(Printf.sprintf "n%d" i) ~power ()

let nodes ?power n = List.init n (fun i -> node ?power i)

(* ---------- Sched_power ---------- *)

let test_sched_power_matches_throughput () =
  let n = node 0 in
  check_close "agent term"
    (Adept_model.Throughput.agent_sched params ~bandwidth:b ~power:730.0 ~degree:5)
    (Sched_power.agent params ~bandwidth:b ~node:n ~children:5);
  check_close "server term"
    (Adept_model.Throughput.server_sched params ~bandwidth:b ~power:730.0)
    (Sched_power.server params ~bandwidth:b ~node:n)

let test_sort_nodes_power_desc () =
  let ns =
    [ node ~power:100.0 0; node ~power:900.0 1; node ~power:500.0 2 ]
  in
  Alcotest.(check (list int)) "strongest first" [ 1; 2; 0 ]
    (List.map Node.id (Sched_power.sort_nodes params ~bandwidth:b ns))

let test_sort_nodes_empty_and_single () =
  Alcotest.(check int) "empty" 0 (List.length (Sched_power.sort_nodes params ~bandwidth:b []));
  Alcotest.(check int) "single" 1
    (List.length (Sched_power.sort_nodes params ~bandwidth:b [ node 0 ]))

let test_supported_children () =
  let n = node 0 in
  (* floor equal to the degree-5 sched power supports exactly 5 children *)
  let floor = Sched_power.agent params ~bandwidth:b ~node:n ~children:5 in
  Alcotest.(check int) "exact capacity" 5
    (Sched_power.supported_children params ~bandwidth:b ~node:n ~floor ~max_children:100);
  Alcotest.(check int) "impossible floor" 0
    (Sched_power.supported_children params ~bandwidth:b ~node:n ~floor:1e9 ~max_children:100);
  Alcotest.(check int) "trivial floor capped" 7
    (Sched_power.supported_children params ~bandwidth:b ~node:n ~floor:0.0 ~max_children:7)

(* ---------- Service_power ---------- *)

let test_service_power () =
  check_close "matches eq 15"
    (Adept_model.Throughput.service params ~bandwidth:b
       [ { Adept_model.Throughput.power = 730.0; wapp = 16.0 } ])
    (Service_power.of_servers params ~bandwidth:b ~wapp:16.0 [ node 0 ]);
  let base = Service_power.of_servers params ~bandwidth:b ~wapp:16.0 [ node 0 ] in
  let more = Service_power.marginal params ~bandwidth:b ~wapp:16.0 [ node 0 ] (node 1) in
  Alcotest.(check bool) "marginal adds" true (more > base)

(* ---------- Evaluate ---------- *)

let test_evaluate_star () =
  let t = Tree.star (node 0) [ node 1; node 2 ] in
  let spec = Evaluate.spec_of_tree ~wapp:16.0 t in
  Alcotest.(check int) "one agent" 1 (List.length spec.Adept_model.Throughput.agents);
  Alcotest.(check int) "two servers" 2 (List.length spec.Adept_model.Throughput.servers);
  let expected =
    Adept_model.Throughput.platform params ~bandwidth:b
      {
        Adept_model.Throughput.agents = [ (730.0, 2) ];
        servers =
          [
            { Adept_model.Throughput.power = 730.0; wapp = 16.0 };
            { Adept_model.Throughput.power = 730.0; wapp = 16.0 };
          ];
      }
  in
  check_close "matches direct Eq. 16" expected (Evaluate.rho params ~bandwidth:b ~wapp:16.0 t)

let test_evaluate_no_servers () =
  let t = Tree.agent (node 0) [ Tree.agent (node 1) [] ] in
  Alcotest.(check bool) "agent without children rejected" true
    (match Evaluate.spec_of_tree ~wapp:1.0 t with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_evaluate_report () =
  let t = Tree.star (node 0) [ node 1 ] in
  let report = Evaluate.report params ~bandwidth:b ~wapp:16.0 t in
  Alcotest.(check bool) "mentions bottleneck" true
    (Astring.String.is_infix ~affix:"bottleneck" report)

(* ---------- rho_hetero / Multi_cluster ---------- *)

let plan_on platform wapp demand =
  match Heuristic.plan params ~platform ~wapp ~demand with
  | Ok r -> r
  | Error e -> Alcotest.fail e

let test_rho_hetero_reduces_to_rho () =
  (* on a uniform-bandwidth platform the generalised model must equal Eq. 16 *)
  let rng = Rng.create 3 in
  let platform = Generator.grid5000_orsay ~rng ~n:20 () in
  let wapp = dgemm 310 in
  let tree = plan_on platform wapp Demand.unbounded in
  let tree = tree.Heuristic.tree in
  check_close "hetero = homogeneous on uniform links"
    (Evaluate.rho_on params ~platform ~wapp tree)
    (Evaluate.rho_hetero params ~platform ~wapp tree)

let test_rho_hetero_penalizes_slow_links () =
  (* the same shape scores lower when its links cross a slow WAN *)
  let rng = Rng.create 4 in
  let fast = Generator.two_sites ~rng ~n_orsay:6 ~n_lyon:6 ~wan_bandwidth:1000.0 () in
  let rng = Rng.create 4 in
  let slow = Generator.two_sites ~rng ~n_orsay:6 ~n_lyon:6 ~wan_bandwidth:0.5 () in
  let wapp = dgemm 310 in
  (* a star rooted in orsay spanning both sites *)
  let tree p = Result.get_ok (Baselines.star (Platform.nodes p)) in
  Alcotest.(check bool) "slow WAN lowers rho" true
    (Evaluate.rho_hetero params ~platform:slow ~wapp (tree slow)
    < Evaluate.rho_hetero params ~platform:fast ~wapp (tree fast))

let test_sub_platform () =
  let rng = Rng.create 5 in
  let platform = Generator.two_sites ~rng ~n_orsay:5 ~n_lyon:3 ~wan_bandwidth:10.0 () in
  match Multi_cluster.sub_platform platform ~cluster:"lyon" with
  | None -> Alcotest.fail "lyon exists"
  | Some (sub, mapping) ->
      Alcotest.(check int) "three nodes" 3 (Platform.size sub);
      Alcotest.(check int) "mapping size" 3 (Array.length mapping);
      Alcotest.(check string) "original cluster" "lyon" (Node.cluster mapping.(0));
      Alcotest.(check bool) "intra bandwidth" true
        (Platform.uniform_bandwidth sub = 1000.0);
      Alcotest.(check bool) "missing cluster" true
        (Multi_cluster.sub_platform platform ~cluster:"nowhere" = None)

let test_multi_cluster_crossover () =
  let wapp = dgemm 310 in
  let plan_at wan =
    let rng = Rng.create 5 in
    let platform = Generator.two_sites ~rng ~n_orsay:16 ~n_lyon:12 ~wan_bandwidth:wan () in
    match Multi_cluster.plan params ~platform ~wapp ~demand:Demand.unbounded with
    | Ok r ->
        Alcotest.(check bool) "valid on platform" true
          (Validate.is_valid ~platform r.Multi_cluster.tree);
        r
    | Error e -> Alcotest.fail e
  in
  let slow = plan_at 0.5 and fast = plan_at 1000.0 in
  (match slow.Multi_cluster.arrangement with
  | Multi_cluster.Single_site _ -> ()
  | Multi_cluster.Federated _ -> Alcotest.fail "slow WAN should stay single-site");
  (match fast.Multi_cluster.arrangement with
  | Multi_cluster.Federated _ -> ()
  | Multi_cluster.Single_site _ -> Alcotest.fail "fast WAN should federate");
  Alcotest.(check bool) "federation buys throughput" true
    (fast.Multi_cluster.predicted_rho > slow.Multi_cluster.predicted_rho);
  Alcotest.(check bool) "all four candidates scored" true
    (List.length fast.Multi_cluster.candidates = 4)

let test_multi_cluster_single_site_platform () =
  (* degenerates to the heuristic on one cluster *)
  let platform = Generator.grid5000_lyon ~n:12 () in
  let wapp = dgemm 310 in
  match Multi_cluster.plan params ~platform ~wapp ~demand:Demand.unbounded with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let heur = plan_on platform wapp Demand.unbounded in
      check_close "same rho as plain heuristic" heur.Heuristic.predicted_rho
        r.Multi_cluster.predicted_rho;
      (match r.Multi_cluster.arrangement with
      | Multi_cluster.Single_site "lyon" -> ()
      | _ -> Alcotest.fail "expected single:lyon")

(* ---------- Baselines ---------- *)

let test_star_baseline () =
  match Baselines.star (nodes 5) with
  | Ok t ->
      Alcotest.(check int) "degree" 4 (Tree.degree t);
      Alcotest.(check bool) "valid" true (Validate.is_valid t)
  | Error e -> Alcotest.fail e

let test_star_too_small () =
  Alcotest.(check bool) "one node fails" true (Result.is_error (Baselines.star (nodes 1)))

let test_balanced_baseline () =
  match Baselines.balanced ~agents:3 (nodes 14) with
  | Ok t ->
      let m = Metrics.of_tree t in
      Alcotest.(check int) "agents" 4 m.Metrics.agents;
      Alcotest.(check int) "servers" 10 m.Metrics.servers;
      Alcotest.(check int) "depth" 2 m.Metrics.depth;
      Alcotest.(check bool) "valid" true (Validate.is_valid t);
      (* even distribution: 10 servers over 3 agents = 4/3/3 *)
      Alcotest.(check int) "max degree" 4 m.Metrics.max_degree
  | Error e -> Alcotest.fail e

let test_balanced_too_small () =
  Alcotest.(check bool) "cannot host 2 per agent" true
    (Result.is_error (Baselines.balanced ~agents:3 (nodes 8)))

let test_dary_star_case () =
  match Baselines.dary ~degree:10 (nodes 6) with
  | Ok t ->
      Alcotest.(check int) "degree capped to star" 5 (Tree.degree t);
      Alcotest.(check bool) "valid" true (Validate.is_valid t)
  | Error e -> Alcotest.fail e

let test_dary_exact () =
  (* 13 nodes, degree 3: root + 3 agents + 9 servers is a perfect tree *)
  match Baselines.dary ~degree:3 (nodes 13) with
  | Ok t ->
      let m = Metrics.of_tree t in
      Alcotest.(check int) "all used" 13 m.Metrics.nodes;
      Alcotest.(check int) "agents" 4 m.Metrics.agents;
      Alcotest.(check int) "depth" 2 m.Metrics.depth;
      Alcotest.(check bool) "valid" true (Validate.is_valid t)
  | Error e -> Alcotest.fail e

let test_dary_frontier_fixup () =
  (* sizes that leave a single-child internal node must still validate *)
  List.iter
    (fun (n, d) ->
      match Baselines.dary ~degree:d (nodes n) with
      | Ok t ->
          Alcotest.(check bool)
            (Printf.sprintf "valid n=%d d=%d" n d)
            true (Validate.is_valid t);
          Alcotest.(check int) (Printf.sprintf "spans n=%d d=%d" n d) n (Tree.size t)
      | Error e -> Alcotest.fail e)
    [ (4, 2); (6, 2); (8, 3); (10, 4); (23, 5); (45, 14); (7, 1) ]

let test_dary_validation () =
  Alcotest.(check bool) "degree 0" true (Result.is_error (Baselines.dary ~degree:0 (nodes 5)));
  Alcotest.(check bool) "one node" true (Result.is_error (Baselines.dary ~degree:2 (nodes 1)))

let test_random_baseline_valid () =
  let rng = Rng.create 5 in
  for _ = 1 to 50 do
    match Baselines.random ~rng (nodes 12) with
    | Ok t -> Alcotest.(check bool) "valid" true (Validate.is_valid t)
    | Error e -> Alcotest.fail e
  done

(* ---------- Heuristic ---------- *)

let test_heuristic_degenerate_tiny_job () =
  (* DGEMM 10 is agent-limited: one agent, one server (paper Table 4 row 1) *)
  let platform = Generator.grid5000_lyon ~n:21 () in
  let r = plan_on platform (dgemm 10) Demand.unbounded in
  Alcotest.(check int) "two nodes" 2 (Tree.size r.Heuristic.tree);
  Alcotest.(check int) "one server" 1 (Tree.server_count r.Heuristic.tree)

let test_heuristic_star_for_huge_job () =
  (* DGEMM 1000 is service-limited: star over all nodes (Table 4 row 4) *)
  let platform = Generator.grid5000_lyon ~n:21 () in
  let r = plan_on platform (dgemm 1000) Demand.unbounded in
  Alcotest.(check int) "all nodes" 21 (Tree.size r.Heuristic.tree);
  Alcotest.(check int) "single agent" 1 (Tree.agent_count r.Heuristic.tree);
  Alcotest.(check int) "degree 20" 20 (Tree.degree r.Heuristic.tree)

let test_heuristic_matches_homogeneous_optimal () =
  (* Table 4: >= 89% of optimal; ours achieves 100% on all four rows *)
  List.iter
    (fun (size, n) ->
      let platform = Generator.grid5000_lyon ~n () in
      let wapp = dgemm size in
      let heur = plan_on platform wapp Demand.unbounded in
      let homo =
        match Homogeneous.plan params ~platform ~wapp ~demand:Demand.unbounded with
        | Ok h -> h
        | Error e -> Alcotest.fail e
      in
      Alcotest.(check bool)
        (Printf.sprintf "dgemm %d: heuristic >= 0.89 * homogeneous" size)
        true
        (heur.Heuristic.predicted_rho >= 0.89 *. homo.Homogeneous.predicted_rho))
    [ (10, 21); (100, 25); (310, 45); (1000, 21) ]

let test_heuristic_valid_and_beats_baselines () =
  let rng = Rng.create 31 in
  let platform = Generator.grid5000_orsay ~rng ~n:60 () in
  let wapp = dgemm 310 in
  let r = plan_on platform wapp Demand.unbounded in
  Alcotest.(check bool) "validates on platform" true
    (Validate.is_valid ~platform r.Heuristic.tree);
  let rho_of tree = Evaluate.rho_on params ~platform ~wapp tree in
  check_close "predicted matches evaluate" (rho_of r.Heuristic.tree)
    r.Heuristic.predicted_rho;
  let sorted = Platform.sorted_by_power_desc platform in
  let star = Result.get_ok (Baselines.star sorted) in
  let balanced = Result.get_ok (Baselines.balanced ~agents:5 sorted) in
  Alcotest.(check bool) "beats star" true (r.Heuristic.predicted_rho >= rho_of star -. 1e-9);
  Alcotest.(check bool) "beats balanced" true
    (r.Heuristic.predicted_rho >= rho_of balanced -. 1e-9)

let test_heuristic_demand_met_minimal () =
  let platform = Generator.grid5000_lyon ~n:50 () in
  let wapp = dgemm 310 in
  let unbounded = plan_on platform wapp Demand.unbounded in
  let half = unbounded.Heuristic.predicted_rho /. 2.0 in
  let bounded = plan_on platform wapp (Demand.rate half) in
  Alcotest.(check bool) "demand met" true bounded.Heuristic.demand_met;
  Alcotest.(check bool) "meets the rate" true (bounded.Heuristic.predicted_rho >= half);
  Alcotest.(check bool) "uses fewer nodes" true
    (Tree.size bounded.Heuristic.tree < Tree.size unbounded.Heuristic.tree)

let test_heuristic_demand_unreachable () =
  let platform = Generator.grid5000_lyon ~n:10 () in
  let r = plan_on platform (dgemm 310) (Demand.rate 1e9) in
  Alcotest.(check bool) "demand not met" false r.Heuristic.demand_met;
  Alcotest.(check bool) "still produces best effort" true (r.Heuristic.predicted_rho > 0.0)

let test_heuristic_probes_recorded () =
  let platform = Generator.grid5000_lyon ~n:10 () in
  let r = plan_on platform (dgemm 310) Demand.unbounded in
  Alcotest.(check bool) "probes non-empty" true (r.Heuristic.probes <> []);
  Alcotest.(check bool) "some feasible probe" true
    (List.exists (fun p -> p.Heuristic.feasible) r.Heuristic.probes)

let test_heuristic_errors () =
  let one = Platform.of_powers [ 100.0 ] in
  Alcotest.(check bool) "single node" true
    (Result.is_error (Heuristic.plan params ~platform:one ~wapp:1.0 ~demand:Demand.unbounded));
  let p2 = Platform.of_powers [ 100.0; 100.0 ] in
  Alcotest.(check bool) "bad wapp" true
    (Result.is_error (Heuristic.plan params ~platform:p2 ~wapp:0.0 ~demand:Demand.unbounded))

let test_heuristic_heterogeneous_links_rejected () =
  let link = Adept_platform.Link.inter_cluster ~default:100.0 [ (("a", "b"), 10.0) ] in
  let ns =
    [
      Node.make ~id:0 ~name:"x" ~power:100.0 ~cluster:"a" ();
      Node.make ~id:1 ~name:"y" ~power:100.0 ~cluster:"b" ();
    ]
  in
  let platform = Platform.create ~link ns in
  Alcotest.(check bool) "rejected" true
    (Result.is_error (Heuristic.plan params ~platform ~wapp:1.0 ~demand:Demand.unbounded))

let test_heuristic_scales_to_thousands () =
  let rng = Rng.create 1 in
  let platform = Generator.grid5000_orsay ~rng ~n:2000 () in
  let r = plan_on platform (dgemm 310) Demand.unbounded in
  Alcotest.(check bool) "valid at n=2000" true (Validate.is_valid ~platform r.Heuristic.tree);
  Alcotest.(check bool) "does not waste nodes once sched-bound" true
    (Tree.size r.Heuristic.tree < 2000);
  (* at this scale the strongest node's minimal-degree Eq. 14 term caps rho *)
  let cap =
    Sched_power.agent params ~bandwidth:1000.0
      ~node:(List.hd (Platform.sorted_by_power_desc platform))
      ~children:2
  in
  Alcotest.(check bool) "rho within the degree-2 sched cap" true
    (r.Heuristic.predicted_rho <= cap +. 1e-6)

let test_build_for_target () =
  let platform = Generator.grid5000_lyon ~n:45 () in
  let wapp = dgemm 310 in
  (match Heuristic.build_for_target params ~platform ~wapp ~target:300.0 with
  | None -> Alcotest.fail "300 req/s should be feasible on 45 nodes"
  | Some tree ->
      Alcotest.(check bool) "valid" true (Validate.is_valid ~platform tree);
      Alcotest.(check bool) "achieves target" true
        (Evaluate.rho_on params ~platform ~wapp tree >= 300.0));
  Alcotest.(check bool) "absurd target infeasible" true
    (Heuristic.build_for_target params ~platform ~wapp ~target:1e9 = None)

(* ---------- Homogeneous ---------- *)

let test_homogeneous_picks_best_degree () =
  let platform = Generator.grid5000_lyon ~n:21 () in
  match Homogeneous.plan params ~platform ~wapp:(dgemm 1000) ~demand:Demand.unbounded with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "degree 20 (star)" 20 r.Homogeneous.degree;
      Alcotest.(check int) "tried all degrees" 20 (List.length r.Homogeneous.per_degree);
      let best_by_scan =
        List.fold_left (fun acc (_, rho) -> Float.max acc rho) 0.0 r.Homogeneous.per_degree
      in
      check_close "winner is the max" best_by_scan r.Homogeneous.predicted_rho

let test_homogeneous_validates () =
  let platform = Generator.grid5000_lyon ~n:45 () in
  match Homogeneous.plan params ~platform ~wapp:(dgemm 310) ~demand:Demand.unbounded with
  | Error e -> Alcotest.fail e
  | Ok r -> Alcotest.(check bool) "valid" true (Validate.is_valid ~platform r.Homogeneous.tree)

(* ---------- Exhaustive ---------- *)

let test_exhaustive_counts () =
  (* 2 nodes: 2 hierarchies (either node can be the agent) *)
  Alcotest.(check int) "n=2" 2 (Exhaustive.count (nodes 2));
  (* enumeration of 3 nodes: subsets of size 2 give 3*2=6 stars; the full
     set gives 3 choices of agent with both others as servers = 3
     (partitions into two singletons) -- 2-node groups admit no subtree *)
  Alcotest.(check int) "n=3" 9 (Exhaustive.count (nodes 3))

let test_exhaustive_trees_valid () =
  Adept.Exhaustive.enumerate_subsets (nodes 5)
  |> Seq.iter (fun t -> Alcotest.(check bool) "valid" true (Validate.is_valid t))

let test_exhaustive_optimal_beats_heuristic () =
  let rng = Rng.create 77 in
  for seed = 1 to 5 do
    ignore seed;
    let powers = List.init 6 (fun _ -> Rng.float_in rng 100.0 1500.0) in
    let platform = Platform.of_powers ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ()) powers in
    let wapp = dgemm 310 in
    match Exhaustive.optimal params ~platform ~wapp () with
    | Error e -> Alcotest.fail e
    | Ok (_, opt_rho) ->
        let heur = plan_on platform wapp Demand.unbounded in
        Alcotest.(check bool) "optimal >= heuristic" true
          (opt_rho >= heur.Heuristic.predicted_rho -. 1e-9);
        Alcotest.(check bool) "heuristic >= 85% of optimal" true
          (heur.Heuristic.predicted_rho >= 0.85 *. opt_rho)
  done

let test_exhaustive_guard () =
  let platform = Generator.grid5000_lyon ~n:15 () in
  Alcotest.(check bool) "too large" true
    (Result.is_error (Exhaustive.optimal params ~platform ~wapp:1.0 ()))

(* ---------- Latency ---------- *)

let star2_lyon () =
  let platform = Generator.grid5000_lyon ~n:3 () in
  let ns = Platform.nodes platform in
  (platform, Tree.star (List.hd ns) (List.tl ns))

let test_latency_tracks_simulation () =
  let platform, tree = star2_lyon () in
  let wapp = dgemm 200 in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let scenario =
    Adept_sim.Scenario.make ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  List.iter
    (fun rate ->
      let est = Latency.estimate params ~bandwidth:b ~wapp ~rate tree in
      let r = Adept_sim.Scenario.run_open scenario ~rate ~warmup:4.0 ~duration:12.0 in
      let measured = Option.get r.Adept_sim.Scenario.mean_response in
      Alcotest.(check bool)
        (Printf.sprintf "rate %.0f: predicted %.4f vs measured %.4f within 30%%" rate
           est.Latency.total measured)
        true
        (Float.abs (est.Latency.total -. measured) /. measured < 0.3))
    [ 20.0; 45.0; 70.0 ]

let test_latency_monotone_in_rate () =
  let platform, tree = star2_lyon () in
  ignore platform;
  let wapp = dgemm 200 in
  let estimates =
    Latency.sweep params ~bandwidth:b ~wapp ~rates:[ 10.0; 40.0; 70.0; 85.0 ] tree
  in
  let rec increasing = function
    | (a : Latency.estimate) :: (b : Latency.estimate) :: rest ->
        a.Latency.total < b.Latency.total && increasing (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "latency grows with load" true (increasing estimates)

let test_latency_instability_at_rho () =
  let platform, tree = star2_lyon () in
  let wapp = dgemm 200 in
  let rho = Evaluate.rho_on params ~platform ~wapp tree in
  let below = Latency.estimate params ~bandwidth:b ~wapp ~rate:(0.95 *. rho) tree in
  let above = Latency.estimate params ~bandwidth:b ~wapp ~rate:(1.05 *. rho) tree in
  Alcotest.(check bool) "stable below rho" true below.Latency.stable;
  Alcotest.(check bool) "unstable above rho" false above.Latency.stable;
  Alcotest.(check bool) "infinite latency when unstable" true
    (above.Latency.total = Float.infinity)

let test_latency_validation () =
  let _, tree = star2_lyon () in
  Alcotest.(check bool) "zero rate" true
    (match Latency.estimate params ~bandwidth:b ~wapp:1.0 ~rate:0.0 tree with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Improver ---------- *)

let test_improver_climbs_from_degenerate () =
  let platform = Generator.grid5000_lyon ~n:20 () in
  let wapp = dgemm 310 in
  let sorted = Platform.sorted_by_power_desc platform in
  let start = Tree.star (List.hd sorted) [ List.nth sorted 1 ] in
  match Improver.improve params ~platform ~wapp start with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let start_rho = Evaluate.rho_on params ~platform ~wapp start in
      Alcotest.(check bool) "strictly improves" true
        (r.Improver.predicted_rho > start_rho);
      Alcotest.(check bool) "steps recorded" true (r.Improver.steps <> []);
      Alcotest.(check bool) "still valid" true (Validate.is_valid ~platform r.Improver.tree);
      (* every recorded step must show strict improvement *)
      List.iter
        (fun (s : Improver.step) ->
          Alcotest.(check bool) "step improved" true (s.Improver.rho_after > s.Improver.rho_before))
        r.Improver.steps

let test_improver_service_bottleneck_adds_servers () =
  let platform = Generator.grid5000_lyon ~n:10 () in
  let wapp = dgemm 1000 in
  (* service-limited: the improver must add servers until nodes run out *)
  let sorted = Platform.sorted_by_power_desc platform in
  let start = Tree.star (List.hd sorted) [ List.nth sorted 1 ] in
  match Improver.improve params ~platform ~wapp start with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "uses the whole pool" 10 (Tree.size r.Improver.tree);
      Alcotest.(check bool) "all steps are server additions" true
        (List.for_all
           (fun (s : Improver.step) ->
             match s.Improver.action with
             | Improver.Added_server _ -> true
             | Improver.Split_agent _ | Improver.Removed_server _ -> false)
           r.Improver.steps)

let test_improver_splits_agent_bottleneck () =
  (* large platform, mid-size jobs: a full star is agent-limited, so the
     improver must split the root at least once *)
  let platform = Generator.homogeneous ~bandwidth:100.0 ~n:45 ~power:730.0 () in
  let wapp = dgemm 310 in
  let sorted = Platform.sorted_by_power_desc platform in
  let start =
    Tree.star (List.hd sorted) (List.filteri (fun i _ -> i >= 1 && i <= 40) sorted)
  in
  match Improver.improve params ~platform ~wapp start with
  | Error e -> Alcotest.fail e
  | Ok r ->
      let start_rho = Evaluate.rho_on params ~platform ~wapp start in
      Alcotest.(check bool) "improved" true (r.Improver.predicted_rho > start_rho);
      Alcotest.(check bool) "a split happened" true
        (List.exists
           (fun (s : Improver.step) ->
             match s.Improver.action with Improver.Split_agent _ -> true | _ -> false)
           r.Improver.steps)

let test_improver_splits_non_root_agent () =
  (* root with two mid agents; agent 1 carries 25 servers and its Eq. 14
     term (313 req/s) sits below the 27-server service power (329), so it
     is the bottleneck; two spare nodes allow a split *)
  let platform = Generator.homogeneous ~bandwidth:100.0 ~n:32 ~power:730.0 () in
  let ns = Array.of_list (Platform.nodes platform) in
  let servers lo hi = List.init (hi - lo + 1) (fun i -> Tree.server ns.(lo + i)) in
  let tree =
    Tree.agent ns.(0)
      [ Tree.agent ns.(1) (servers 3 27); Tree.agent ns.(2) (servers 28 29) ]
  in
  let wapp = dgemm 310 in
  match Improver.improve params ~platform ~wapp tree with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check bool) "improved" true
        (r.Improver.predicted_rho > Evaluate.rho_on params ~platform ~wapp tree);
      Alcotest.(check bool) "valid" true (Validate.is_valid ~platform r.Improver.tree);
      Alcotest.(check bool) "split the overloaded mid agent" true
        (List.exists
           (fun (s : Improver.step) ->
             match s.Improver.action with
             | Improver.Split_agent (agent, _) -> agent = 1
             | _ -> false)
           r.Improver.steps)

let test_improver_at_most_heuristic () =
  let platform = Generator.grid5000_lyon ~n:30 () in
  let wapp = dgemm 310 in
  let sorted = Platform.sorted_by_power_desc platform in
  let start = Tree.star (List.hd sorted) [ List.nth sorted 1 ] in
  let improved =
    match Improver.improve params ~platform ~wapp start with
    | Ok r -> r.Improver.predicted_rho
    | Error e -> Alcotest.fail e
  in
  let heur = plan_on platform wapp Demand.unbounded in
  Alcotest.(check bool) "local climb <= from-scratch plan" true
    (improved <= heur.Heuristic.predicted_rho +. 1e-9)

let test_improver_max_iterations () =
  let platform = Generator.grid5000_lyon ~n:30 () in
  let wapp = dgemm 1000 in
  let sorted = Platform.sorted_by_power_desc platform in
  let start = Tree.star (List.hd sorted) [ List.nth sorted 1 ] in
  match Improver.improve ~max_iterations:3 params ~platform ~wapp start with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "stopped at limit" 3 (List.length r.Improver.steps);
      Alcotest.(check bool) "not converged" false r.Improver.converged

let test_improver_rejects_invalid_input () =
  let platform = Generator.grid5000_lyon ~n:5 () in
  let bad = Tree.server (Platform.node platform 0) in
  Alcotest.(check bool) "invalid input" true
    (Result.is_error (Improver.improve params ~platform ~wapp:1.0 bad))

(* ---------- Planner ---------- *)

let test_planner_strategy_strings () =
  List.iter
    (fun s ->
      match Planner.strategy_of_string s with
      | Ok st -> Alcotest.(check string) "roundtrip" s (Planner.strategy_name st)
      | Error e -> Alcotest.fail (Error.to_string e))
    [
      "heuristic"; "reference"; "star"; "balanced:14"; "dary:3"; "homogeneous";
      "exhaustive"; "multi-cluster"; "improved:star"; "improved:dary:3";
    ];
  Alcotest.(check bool) "unknown" true
    (Result.is_error (Planner.strategy_of_string "nonsense"));
  Alcotest.(check bool) "unknown inner" true
    (Result.is_error (Planner.strategy_of_string "improved:nonsense"))

let test_planner_run_all () =
  let platform = Generator.grid5000_lyon ~n:12 () in
  let strategies =
    [ Planner.Heuristic; Planner.Reference; Planner.Star; Planner.Balanced 2;
      Planner.Dary 3; Planner.Homogeneous_optimal; Planner.Multi_cluster;
      Planner.Improved Planner.Star ]
  in
  List.iter
    (fun s ->
      match Planner.run s params ~platform ~wapp:(dgemm 310) ~demand:Demand.unbounded with
      | Ok plan ->
          Alcotest.(check bool) "positive rho" true (plan.Planner.predicted_rho > 0.0);
          Alcotest.(check bool) "uses <= available" true
            (plan.Planner.nodes_used <= plan.Planner.nodes_available)
      | Error e -> Alcotest.fail (Planner.strategy_name s ^ ": " ^ Error.to_string e))
    strategies

let test_planner_improved_strategy () =
  (* improved:<base> must never be worse than the base *)
  let platform = Generator.grid5000_lyon ~n:20 () in
  let wapp = dgemm 310 in
  let rho s =
    match Planner.run s params ~platform ~wapp ~demand:Demand.unbounded with
    | Ok p -> p.Planner.predicted_rho
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  Alcotest.(check bool) "improved dary:2 >= dary:2" true
    (rho (Planner.Improved (Planner.Dary 2)) >= rho (Planner.Dary 2) -. 1e-9)

let test_planner_multi_cluster_on_two_sites () =
  let rng = Rng.create 6 in
  let platform = Generator.two_sites ~rng ~n_orsay:8 ~n_lyon:8 ~wan_bandwidth:500.0 () in
  let wapp = dgemm 310 in
  (match Planner.run Planner.Multi_cluster params ~platform ~wapp ~demand:Demand.unbounded with
  | Ok p -> Alcotest.(check bool) "positive rho" true (p.Planner.predicted_rho > 0.0)
  | Error e -> Alcotest.fail (Error.to_string e));
  (* the plain heuristic cannot handle heterogeneous connectivity *)
  Alcotest.(check bool) "heuristic errors on two sites" true
    (Result.is_error
       (Planner.run Planner.Heuristic params ~platform ~wapp ~demand:Demand.unbounded))

let test_planner_compare () =
  let platform = Generator.grid5000_lyon ~n:12 () in
  let results =
    Planner.compare_strategies params ~platform ~wapp:(dgemm 310) ~demand:Demand.unbounded
      [ Planner.Heuristic; Planner.Star ]
  in
  Alcotest.(check int) "two results" 2 (List.length results)

let test_planner_replan_prunes_failed () =
  let platform = Generator.grid5000_lyon ~n:12 () in
  let wapp = dgemm 310 in
  match
    Planner.replan Planner.Heuristic params ~platform ~wapp ~demand:Demand.unbounded
      ~failed:[ 5; 2; 5 ] ()
  with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok r ->
      Alcotest.(check (list int)) "failed sorted and deduplicated" [ 2; 5 ]
        r.Planner.failed;
      Alcotest.(check int) "survivors" 10 r.Planner.survivors;
      let tree = r.Planner.replanned.Planner.tree in
      Alcotest.(check bool) "valid on the original platform" true
        (Validate.is_valid ~platform tree);
      Alcotest.(check bool) "failed nodes absent from the new hierarchy" true
        (List.for_all (fun n -> not (List.mem (Node.id n) [ 2; 5 ])) (Tree.nodes tree));
      Alcotest.(check bool) "losing nodes cannot help" true
        (r.Planner.rho_after <= r.Planner.rho_before +. 1e-9);
      check_close "rho_after is the replanned prediction"
        r.Planner.replanned.Planner.predicted_rho r.Planner.rho_after;
      Alcotest.(check bool) "drop in [0, 1]" true
        (r.Planner.rho_drop >= 0.0 && r.Planner.rho_drop <= 1.0)

let test_planner_replan_reference () =
  (* against an explicit pre-failure hierarchy, the drop is measured from
     that hierarchy's rho, not from a fresh plan *)
  let platform = Generator.grid5000_lyon ~n:8 () in
  let wapp = dgemm 310 in
  let reference =
    match Baselines.star (Platform.sorted_by_power_desc platform) with
    | Ok t -> t
    | Error e -> Alcotest.fail e
  in
  match
    Planner.replan Planner.Heuristic params ~platform ~wapp ~demand:Demand.unbounded
      ~failed:[ 3 ] ~reference ()
  with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok r ->
      check_close "rho_before is the reference rho"
        (Evaluate.rho_on params ~platform ~wapp reference)
        r.Planner.rho_before

let test_planner_replan_errors () =
  (* Degenerate remnants must come back as typed errors, never as
     exceptions — this is the contract the online controller leans on. *)
  let platform = Generator.grid5000_lyon ~n:4 () in
  let wapp = dgemm 310 in
  let replan ?(strategy = Planner.Heuristic) failed =
    Planner.replan strategy params ~platform ~wapp ~demand:Demand.unbounded
      ~failed ()
  in
  (match replan [ 99 ] with
  | Error (Error.Invalid_input _) -> ()
  | Error e -> Alcotest.fail ("off-platform id: wrong error " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "off-platform id accepted");
  (match replan [] with
  | Error (Error.Invalid_input _) -> ()
  | Error e -> Alcotest.fail ("empty failed: wrong error " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "empty failed list accepted");
  (match replan [ 0; 1; 2; 3 ] with
  | Error Error.No_survivors -> ()
  | Error e -> Alcotest.fail ("zero survivors: wrong error " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "zero survivors accepted");
  (match replan [ 0; 1; 2 ] with
  | Error (Error.Insufficient_survivors { survivors = 1; required = 2 }) -> ()
  | Error e -> Alcotest.fail ("one survivor: wrong error " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "one survivor accepted");
  (* Two survivors are enough for a hierarchy in principle, but not for a
     balanced graph with three middle agents: the strategy itself cannot
     plan the remnant. *)
  (match replan ~strategy:(Planner.Balanced 3) [ 0; 1 ] with
  | Error (Error.No_feasible_hierarchy _) -> ()
  | Error e ->
      Alcotest.fail ("infeasible remnant: wrong error " ^ Error.to_string e)
  | Ok _ -> Alcotest.fail "balanced:3 planned on two survivors")

let test_planner_replan_never_raises () =
  let platform = Generator.grid5000_lyon ~n:5 () in
  let wapp = dgemm 310 in
  (* Every subset of failed ids, including all-failed and out-of-range
     spreads, must return Ok or Error without raising. *)
  for mask = 0 to 63 do
    let failed = List.filter (fun i -> mask land (1 lsl i) <> 0) [ 0; 1; 2; 3; 4; 5 ] in
    ignore
      (Planner.replan Planner.Heuristic params ~platform ~wapp
         ~demand:Demand.unbounded ~failed ())
  done

(* ---------- pooled/reference equivalence ---------- *)

(* The pooled planner must be *decision-identical* to the frozen seed
   implementation (Heuristic_reference): not approximately equal — the
   same floats through the same comparisons, hence bit-identical rho,
   structurally equal trees and field-identical probe logs. *)

let check_equivalent ?(msg = "") platform wapp demand =
  match
    ( Heuristic.plan params ~platform ~wapp ~demand,
      Heuristic_reference.plan params ~platform ~wapp ~demand )
  with
  | Error a, Error b -> Alcotest.(check string) (msg ^ "same error") b a
  | Ok _, Error e -> Alcotest.fail (msg ^ "pooled ok, reference error: " ^ e)
  | Error e, Ok _ -> Alcotest.fail (msg ^ "pooled error, reference ok: " ^ e)
  | Ok fast, Ok slow ->
      Alcotest.(check bool)
        (msg ^ "trees structurally equal")
        true
        (Tree.equal fast.Heuristic.tree slow.Heuristic_reference.tree);
      Alcotest.(check bool)
        (msg ^ "rho bit-identical")
        true
        (fast.Heuristic.predicted_rho = slow.Heuristic_reference.predicted_rho);
      Alcotest.(check bool)
        (msg ^ "demand flag identical")
        true
        (fast.Heuristic.demand_met = slow.Heuristic_reference.demand_met);
      Alcotest.(check int)
        (msg ^ "same probe count")
        (List.length slow.Heuristic_reference.probes)
        (List.length fast.Heuristic.probes);
      List.iter2
        (fun (a : Heuristic.probe) (b : Heuristic_reference.probe) ->
          Alcotest.(check bool)
            (msg ^ "probe bit-identical")
            true
            (a.Heuristic.target = b.Heuristic_reference.target
            && a.Heuristic.feasible = b.Heuristic_reference.feasible
            && a.Heuristic.achieved_rho = b.Heuristic_reference.achieved_rho
            && a.Heuristic.nodes_used = b.Heuristic_reference.nodes_used))
        fast.Heuristic.probes slow.Heuristic_reference.probes

let test_equivalence_orsay () =
  let rng = Rng.create 42 in
  let platform = Generator.grid5000_orsay ~rng ~n:200 () in
  check_equivalent ~msg:"dgemm310 " platform (dgemm 310) Demand.unbounded;
  check_equivalent ~msg:"dgemm1000 " platform (dgemm 1000) Demand.unbounded;
  check_equivalent ~msg:"demand " platform (dgemm 310) (Demand.rate 200.0)

let test_equivalence_two_node_boundary () =
  (* the smallest planable platform: [rest] is a single server, so every
     prefix-sum lookup sits on the array boundary (hi_service over one
     element, hi_predict = server_sched of index 1) *)
  let platform = Generator.grid5000_lyon ~n:2 () in
  check_equivalent ~msg:"lyon2 " platform (dgemm 310) Demand.unbounded;
  let hetero =
    Platform.create
      ~link:(Adept_platform.Link.homogeneous ~bandwidth:1000.0 ())
      [ node ~power:900.0 0; node ~power:150.0 1 ]
  in
  check_equivalent ~msg:"hetero2 " hetero (dgemm 310) Demand.unbounded;
  match Heuristic.plan params ~platform:hetero ~wapp:(dgemm 310) ~demand:Demand.unbounded with
  | Error e -> Alcotest.fail e
  | Ok r ->
      Alcotest.(check int) "both nodes used" 2 (Tree.size r.Heuristic.tree);
      (* lighten_agents parks the agent on the weaker node whenever that
         still meets the target, freeing the strong node to serve *)
      Alcotest.(check bool) "one agent, one server" true
        (Tree.agent_count r.Heuristic.tree = 1
        && Tree.server_count r.Heuristic.tree = 1);
      Alcotest.(check bool) "validates" true
        (Validate.is_valid ~platform:hetero r.Heuristic.tree)

(* ---------- incremental replans ---------- *)

let lyon_star_plan n =
  let platform = Generator.grid5000_lyon ~n () in
  let wapp = dgemm 310 in
  match Planner.run Planner.Star params ~platform ~wapp ~demand:Demand.unbounded with
  | Ok p -> (platform, wapp, p)
  | Error e -> Alcotest.fail (Error.to_string e)

let test_replan_incremental_empty_crash () =
  (* determinism anchor: no crashes in, the very same plan out *)
  let platform, wapp, p = lyon_star_plan 4 in
  match
    Planner.replan_incremental Planner.Star params ~platform ~wapp
      ~demand:Demand.unbounded ~failed:[] ~previous:p.Planner.tree ()
  with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (r, mode) ->
      Alcotest.(check string) "mode" "incremental" (Planner.replan_mode_name mode);
      Alcotest.(check bool) "tree physically shared" true
        (r.Planner.replanned.Planner.tree == p.Planner.tree);
      Alcotest.(check bool) "rho bit-identical" true
        (r.Planner.rho_after = p.Planner.predicted_rho
        && r.Planner.rho_before = r.Planner.rho_after);
      Alcotest.(check int) "zero evaluations" 0
        r.Planner.replanned.Planner.evaluations;
      Alcotest.(check (float 0.0)) "zero drop" 0.0 r.Planner.rho_drop

let test_replan_incremental_modes () =
  let platform, wapp, p = lyon_star_plan 6 in
  let previous = p.Planner.tree in
  let root = Node.id (Tree.root_node previous) in
  let incr failed =
    Planner.replan_incremental Planner.Star params ~platform ~wapp
      ~demand:Demand.unbounded ~failed ~previous ()
  in
  (match incr [ 1 ] with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (r, mode) ->
      Alcotest.(check string) "server crash patches in place" "incremental"
        (Planner.replan_mode_name mode);
      Alcotest.(check (option string)) "no fallback reason" None
        (Planner.replan_fallback_reason mode);
      Alcotest.(check bool) "dead node written out" true
        (not (Tree.mem r.Planner.replanned.Planner.tree 1));
      Alcotest.(check bool) "validates" true
        (Validate.is_valid ~platform r.Planner.replanned.Planner.tree);
      Alcotest.(check int) "one evaluation" 1
        r.Planner.replanned.Planner.evaluations);
  (match incr [ root ] with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (_, mode) ->
      Alcotest.(check string) "root death falls back" "full"
        (Planner.replan_mode_name mode);
      Alcotest.(check (option string)) "with its reason" (Some "root-died")
        (Planner.replan_fallback_reason mode));
  (* error paths mirror [replan]'s typed errors *)
  Alcotest.(check bool) "off-platform id rejected" true
    (match incr [ 99 ] with Error (Error.Invalid_input _) -> true | _ -> false);
  Alcotest.(check bool) "bad slack rejected" true
    (match
       Planner.replan_incremental Planner.Star params ~platform ~wapp
         ~demand:Demand.unbounded ~failed:[ 1 ] ~previous ~slack:1.5 ()
     with
    | Error (Error.Invalid_input _) -> true
    | _ -> false);
  Alcotest.(check bool) "too few survivors" true
    (match incr [ 0; 1; 2; 3; 4 ] with
    | Error (Error.Insufficient_survivors _) -> true
    | _ -> false)

(* Satellite regression (incremental twin of the sim-level re-admission
   test): a node written out by an earlier patch and recovered since must
   rejoin through the patcher itself, without waiting for a full-replan
   fallback to re-admit it implicitly. *)
let test_replan_incremental_readmission () =
  let platform, wapp, p = lyon_star_plan 6 in
  let incr ?recovered failed previous =
    Planner.replan_incremental Planner.Star params ~platform ~wapp
      ~demand:Demand.unbounded ~failed ?recovered ~previous ()
  in
  let root = Node.id (Tree.root_node p.Planner.tree) in
  let s1, s2, rest =
    match List.filter (fun i -> i <> root) [ 0; 1; 2; 3; 4; 5 ] with
    | a :: b :: rest -> (a, b, rest)
    | _ -> Alcotest.fail "star over 6 nodes has 5 servers"
  in
  (* first incident writes one server off, as an online controller would *)
  let without_s1 =
    match incr [ s1 ] p.Planner.tree with
    | Ok (r, _) -> r.Planner.replanned.Planner.tree
    | Error e -> Alcotest.fail (Error.to_string e)
  in
  Alcotest.(check bool) "precondition: first server written out" true
    (not (Tree.mem without_s1 s1));
  (* second incident: another server dies while the first is back up —
     the patcher must write out the corpse AND graft the recovery *)
  (match incr ~recovered:[ s1 ] [ s2 ] without_s1 with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (r, mode) ->
      Alcotest.(check string) "patched in place" "incremental"
        (Planner.replan_mode_name mode);
      let tree = r.Planner.replanned.Planner.tree in
      Alcotest.(check bool) "corpse written out" true (not (Tree.mem tree s2));
      Alcotest.(check bool) "recovered node re-admitted" true (Tree.mem tree s1);
      Alcotest.(check bool) "validates" true (Validate.is_valid ~platform tree);
      Alcotest.(check int) "patch plus graft evaluated" 2
        r.Planner.replanned.Planner.evaluations);
  (* nothing died but a node recovered: pure improvement step, no slack
     gate, still [Incremental] *)
  (match incr ~recovered:[ s1 ] [] without_s1 with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (r, mode) ->
      Alcotest.(check string) "graft-only is incremental" "incremental"
        (Planner.replan_mode_name mode);
      Alcotest.(check bool) "re-admitted without a failure" true
        (Tree.mem r.Planner.replanned.Planner.tree s1);
      Alcotest.(check bool) "improvement step reports no drop" true
        (r.Planner.rho_drop = 0.0
        && r.Planner.rho_after >= r.Planner.rho_before));
  (* a "recovered" id still serving in [previous] never left: the
     verbatim determinism anchor holds *)
  (match incr ~recovered:[ root ] [] p.Planner.tree with
  | Error e -> Alcotest.fail (Error.to_string e)
  | Ok (r, _) ->
      Alcotest.(check bool) "tree physically shared" true
        (r.Planner.replanned.Planner.tree == p.Planner.tree);
      Alcotest.(check int) "zero evaluations" 0
        r.Planner.replanned.Planner.evaluations);
  (* a patch reduced to the bare root is rescued by the recovery instead
     of falling back to a full replan *)
  (let two_node =
     match incr (s2 :: rest) p.Planner.tree with
     | Ok (r, _) -> r.Planner.replanned.Planner.tree
     | Error e -> Alcotest.fail (Error.to_string e)
   in
   Alcotest.(check int) "precondition: root plus one server" 2
     (Tree.size two_node);
   (* still-dead off-tree nodes ride along in [failed], exactly as the
      online controller submits them, keeping the survivor bound honest *)
   match incr ~recovered:[ s2 ] (s1 :: rest) two_node with
   | Error e -> Alcotest.fail (Error.to_string e)
   | Ok (r, mode) ->
       Alcotest.(check string) "bare-root patch rescued incrementally"
         "incremental"
         (Planner.replan_mode_name mode);
       Alcotest.(check bool) "rescue node serves" true
         (Tree.mem r.Planner.replanned.Planner.tree s2));
  (* contradictory ledger is a typed error *)
  Alcotest.(check bool) "failed+recovered overlap rejected" true
    (match incr ~recovered:[ s1 ] [ s1 ] without_s1 with
    | Error (Error.Invalid_input _) -> true
    | _ -> false);
  Alcotest.(check bool) "off-platform recovery rejected" true
    (match incr ~recovered:[ 99 ] [ s2 ] without_s1 with
    | Error (Error.Invalid_input _) -> true
    | _ -> false)

(* ---------- properties ---------- *)

let prop_heuristic_always_valid =
  QCheck.Test.make ~count:60 ~name:"heuristic plans validate on random platforms"
    QCheck.(pair (int_range 0 10_000) (int_range 2 40))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n ~power_min:50.0
          ~power_max:2000.0 ()
      in
      match Heuristic.plan params ~platform ~wapp:(dgemm 310) ~demand:Demand.unbounded with
      | Error _ -> false
      | Ok r ->
          Validate.is_valid ~platform r.Heuristic.tree
          && Tree.size r.Heuristic.tree <= n)

let prop_heuristic_dominates_star =
  QCheck.Test.make ~count:40 ~name:"heuristic >= power-aware star on random platforms"
    QCheck.(triple (int_range 0 10_000) (int_range 3 35) (int_range 50 600))
    (fun (seed, n, size) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n ~power_min:100.0
          ~power_max:1500.0 ()
      in
      let wapp = dgemm size in
      match
        ( Heuristic.plan params ~platform ~wapp ~demand:Demand.unbounded,
          Baselines.star (Platform.sorted_by_power_desc platform) )
      with
      | Ok heur, Ok star ->
          heur.Heuristic.predicted_rho
          >= Evaluate.rho_on params ~platform ~wapp star -. 1e-6
      | _ -> false)

let prop_improver_preserves_validity =
  QCheck.Test.make ~count:40 ~name:"improver output always validates and never regresses"
    QCheck.(pair (int_range 0 10_000) (int_range 4 20))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n ~power_min:100.0
          ~power_max:1500.0 ()
      in
      match Baselines.random ~rng (Platform.nodes platform) with
      | Error _ -> QCheck.assume_fail ()
      | Ok start -> (
          let wapp = dgemm 310 in
          match Improver.improve params ~platform ~wapp start with
          | Error _ -> false
          | Ok r ->
              Validate.is_valid ~platform r.Improver.tree
              && r.Improver.predicted_rho
                 >= Evaluate.rho_on params ~platform ~wapp start -. 1e-9))

let prop_normalize_always_validates =
  QCheck.Test.make ~count:100 ~name:"Tree.normalize fixes any random tree shape"
    QCheck.(pair (int_range 0 10_000) (int_range 2 20))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n ~power_min:100.0
          ~power_max:1500.0 ()
      in
      match Baselines.random ~rng (Platform.nodes platform) with
      | Error _ -> QCheck.assume_fail ()
      | Ok t ->
          let t' = Adept_hierarchy.Tree.normalize t in
          Validate.is_valid t'
          && Adept_hierarchy.Tree.size t' = Adept_hierarchy.Tree.size t)

let prop_heuristic_bounded_by_oracle =
  (* the exhaustive planner is the ground truth on small platforms: the
     heuristic may tie it but must never claim a higher throughput, and
     both must agree with Demand.is_met about whether a demand is
     satisfied *)
  QCheck.Test.make ~count:50
    ~name:"oracle: heuristic never predicts above the exhaustive optimum"
    QCheck.(pair (int_range 0 10_000) (int_range 2 Exhaustive.default_max_nodes))
    (fun (seed, n) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n ~power_min:100.0
          ~power_max:1500.0 ()
      in
      let wapp = dgemm 310 in
      match Exhaustive.optimal params ~platform ~wapp () with
      | Error _ -> false
      | Ok (opt_tree, opt_rho) -> (
          match Heuristic.plan params ~platform ~wapp ~demand:Demand.unbounded with
          | Error _ -> false
          | Ok heur ->
              let bounded_by_oracle =
                heur.Heuristic.predicted_rho <= opt_rho *. (1.0 +. 1e-9) +. 1e-9
              in
              (* a demand strictly below the optimum: the heuristic's
                 demand_met flag must agree with Demand.is_met on its own
                 prediction, and claiming the demand met implies the
                 oracle meets it too *)
              let feasible = Demand.rate (0.5 *. opt_rho) in
              let demand_consistent =
                match Heuristic.plan params ~platform ~wapp ~demand:feasible with
                | Error _ -> false
                | Ok h ->
                    Bool.equal h.Heuristic.demand_met
                      (Demand.is_met feasible h.Heuristic.predicted_rho)
                    && ((not h.Heuristic.demand_met) || Demand.is_met feasible opt_rho)
              in
              Validate.is_valid ~platform opt_tree
              && Validate.is_valid ~platform heur.Heuristic.tree
              && opt_rho > 0.0 && bounded_by_oracle && demand_consistent))

let prop_dary_valid_and_spanning =
  QCheck.Test.make ~count:150 ~name:"dary trees always validate and span"
    QCheck.(pair (int_range 2 60) (int_range 1 12))
    (fun (n, d) ->
      match Baselines.dary ~degree:d (nodes n) with
      | Error _ -> false
      | Ok t -> Validate.is_valid t && Tree.size t = n)

let prop_pooled_matches_reference =
  (* the equivalence harness gating the pooled planner: across every
     generator family (smooth heterogeneous, clustered power classes,
     fully homogeneous) and both demand regimes, [Heuristic] must be
     bit-identical to the frozen [Heuristic_reference] oracle — same
     trees, same rho floats, same probe log *)
  QCheck.Test.make ~count:30
    ~name:"pooled heuristic bit-identical to the reference oracle"
    QCheck.(triple (int_range 0 10_000) (int_range 2 300) (int_range 0 2))
    (fun (seed, n, kind) ->
      let rng = Rng.create seed in
      let platform =
        match kind with
        | 0 ->
            Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n
              ~power_min:100.0 ~power_max:1000.0 ()
        | 1 -> Generator.grid5000_orsay ~rng ~n ()
        | _ -> Generator.homogeneous ~bandwidth:1000.0 ~n ~power:730.0 ()
      in
      let wapp = dgemm (100 + (seed mod 900)) in
      let demand =
        if seed mod 3 = 0 then Demand.rate (float_of_int ((seed mod 400) + 50))
        else Demand.unbounded
      in
      match
        ( Heuristic.plan params ~platform ~wapp ~demand,
          Heuristic_reference.plan params ~platform ~wapp ~demand )
      with
      | Ok f, Ok s ->
          Tree.equal f.Heuristic.tree s.Heuristic_reference.tree
          && f.Heuristic.predicted_rho = s.Heuristic_reference.predicted_rho
          && f.Heuristic.demand_met = s.Heuristic_reference.demand_met
          && List.length f.Heuristic.probes
             = List.length s.Heuristic_reference.probes
          && List.for_all2
               (fun (a : Heuristic.probe) (b : Heuristic_reference.probe) ->
                 a.Heuristic.target = b.Heuristic_reference.target
                 && a.Heuristic.feasible = b.Heuristic_reference.feasible
                 && a.Heuristic.achieved_rho = b.Heuristic_reference.achieved_rho
                 && a.Heuristic.nodes_used = b.Heuristic_reference.nodes_used)
               f.Heuristic.probes s.Heuristic_reference.probes
      | Error a, Error b -> a = b
      | Ok _, Error _ | Error _, Ok _ -> false)

let prop_replan_incremental_within_slack =
  (* an accepted patch is within the configured slack of the
     survivor-platform upper bound, hence of anything a from-scratch
     replan can achieve; a rejected patch IS the from-scratch replan —
     either way the incremental path never trails the full one by more
     than slack *)
  QCheck.Test.make ~count:25
    ~name:"incremental replan within slack of the full replan"
    QCheck.(triple (int_range 0 10_000) (int_range 4 120) (int_range 1 3))
    (fun (seed, n, crashes) ->
      let rng = Rng.create seed in
      let platform =
        Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n
          ~power_min:100.0 ~power_max:1000.0 ()
      in
      let wapp = dgemm 310 in
      let slack = 0.15 in
      match
        Planner.run Planner.Heuristic params ~platform ~wapp ~demand:Demand.unbounded
      with
      | Error _ -> QCheck.assume_fail ()
      | Ok p ->
          let previous = p.Planner.tree in
          let root = Node.id (Tree.root_node previous) in
          let candidates =
            List.filter (fun i -> i <> root) (List.map Node.id (Tree.nodes previous))
          in
          if candidates = [] then QCheck.assume_fail ()
          else
            let failed =
              List.sort_uniq Int.compare
                (List.init (min crashes (List.length candidates)) (fun _ ->
                     List.nth candidates (Rng.int rng (List.length candidates))))
            in
            let incr =
              Planner.replan_incremental Planner.Heuristic params ~platform ~wapp
                ~demand:Demand.unbounded ~failed ~previous ~slack ()
            in
            let full =
              Planner.replan Planner.Heuristic params ~platform ~wapp
                ~demand:Demand.unbounded ~failed ~reference:previous ()
            in
            (match (incr, full) with
            | Ok (ri, _), Ok rf ->
                ri.Planner.rho_after
                >= (1.0 -. slack) *. rf.Planner.rho_after *. (1.0 -. 1e-9)
                && Validate.is_valid ~platform ri.Planner.replanned.Planner.tree
                && List.for_all
                     (fun id -> not (Tree.mem ri.Planner.replanned.Planner.tree id))
                     failed
            | Error _, Error _ -> true
            | Ok (_, _), Error _ ->
                (* the patch can survive a remnant the full planner gives
                   up on — strictly better availability *)
                true
            | Error _, Ok _ -> false))

let () =
  Alcotest.run "core"
    [
      ( "sched_power",
        [
          Alcotest.test_case "matches throughput" `Quick test_sched_power_matches_throughput;
          Alcotest.test_case "sort by power" `Quick test_sort_nodes_power_desc;
          Alcotest.test_case "sort edge cases" `Quick test_sort_nodes_empty_and_single;
          Alcotest.test_case "supported children" `Quick test_supported_children;
        ] );
      ("service_power", [ Alcotest.test_case "eq 15" `Quick test_service_power ]);
      ( "evaluate",
        [
          Alcotest.test_case "star spec" `Quick test_evaluate_star;
          Alcotest.test_case "rejects empty" `Quick test_evaluate_no_servers;
          Alcotest.test_case "report" `Quick test_evaluate_report;
        ] );
      ( "multi_cluster",
        [
          Alcotest.test_case "hetero reduces to homogeneous" `Quick
            test_rho_hetero_reduces_to_rho;
          Alcotest.test_case "slow links penalized" `Quick
            test_rho_hetero_penalizes_slow_links;
          Alcotest.test_case "sub platform" `Quick test_sub_platform;
          Alcotest.test_case "WAN crossover" `Quick test_multi_cluster_crossover;
          Alcotest.test_case "single-site degenerate" `Quick
            test_multi_cluster_single_site_platform;
        ] );
      ( "baselines",
        [
          Alcotest.test_case "star" `Quick test_star_baseline;
          Alcotest.test_case "star too small" `Quick test_star_too_small;
          Alcotest.test_case "balanced" `Quick test_balanced_baseline;
          Alcotest.test_case "balanced too small" `Quick test_balanced_too_small;
          Alcotest.test_case "dary star case" `Quick test_dary_star_case;
          Alcotest.test_case "dary exact" `Quick test_dary_exact;
          Alcotest.test_case "dary frontier fixup" `Quick test_dary_frontier_fixup;
          Alcotest.test_case "dary validation" `Quick test_dary_validation;
          Alcotest.test_case "random valid" `Quick test_random_baseline_valid;
        ] );
      ( "heuristic",
        [
          Alcotest.test_case "tiny job degenerates" `Quick test_heuristic_degenerate_tiny_job;
          Alcotest.test_case "huge job stars" `Quick test_heuristic_star_for_huge_job;
          Alcotest.test_case "table 4 quality" `Quick
            test_heuristic_matches_homogeneous_optimal;
          Alcotest.test_case "valid and beats baselines" `Quick
            test_heuristic_valid_and_beats_baselines;
          Alcotest.test_case "demand met minimally" `Quick test_heuristic_demand_met_minimal;
          Alcotest.test_case "demand unreachable" `Quick test_heuristic_demand_unreachable;
          Alcotest.test_case "probes recorded" `Quick test_heuristic_probes_recorded;
          Alcotest.test_case "errors" `Quick test_heuristic_errors;
          Alcotest.test_case "heterogeneous links rejected" `Quick
            test_heuristic_heterogeneous_links_rejected;
          Alcotest.test_case "scales to thousands" `Quick
            test_heuristic_scales_to_thousands;
          Alcotest.test_case "build_for_target" `Quick test_build_for_target;
        ] );
      ( "homogeneous",
        [
          Alcotest.test_case "best degree" `Quick test_homogeneous_picks_best_degree;
          Alcotest.test_case "validates" `Quick test_homogeneous_validates;
        ] );
      ( "exhaustive",
        [
          Alcotest.test_case "counts" `Quick test_exhaustive_counts;
          Alcotest.test_case "all valid" `Quick test_exhaustive_trees_valid;
          Alcotest.test_case "oracle vs heuristic" `Slow
            test_exhaustive_optimal_beats_heuristic;
          Alcotest.test_case "size guard" `Quick test_exhaustive_guard;
        ] );
      ( "latency",
        [
          Alcotest.test_case "tracks simulation" `Slow test_latency_tracks_simulation;
          Alcotest.test_case "monotone in rate" `Quick test_latency_monotone_in_rate;
          Alcotest.test_case "instability at rho" `Quick test_latency_instability_at_rho;
          Alcotest.test_case "validation" `Quick test_latency_validation;
        ] );
      ( "improver",
        [
          Alcotest.test_case "climbs from degenerate" `Quick
            test_improver_climbs_from_degenerate;
          Alcotest.test_case "adds servers when service-limited" `Quick
            test_improver_service_bottleneck_adds_servers;
          Alcotest.test_case "splits agent bottleneck" `Quick
            test_improver_splits_agent_bottleneck;
          Alcotest.test_case "splits non-root agent" `Quick
            test_improver_splits_non_root_agent;
          Alcotest.test_case "bounded by heuristic" `Quick test_improver_at_most_heuristic;
          Alcotest.test_case "max iterations" `Quick test_improver_max_iterations;
          Alcotest.test_case "rejects invalid input" `Quick
            test_improver_rejects_invalid_input;
        ] );
      ( "planner",
        [
          Alcotest.test_case "strategy strings" `Quick test_planner_strategy_strings;
          Alcotest.test_case "run all" `Quick test_planner_run_all;
          Alcotest.test_case "improved strategy" `Quick test_planner_improved_strategy;
          Alcotest.test_case "multi-cluster on two sites" `Quick
            test_planner_multi_cluster_on_two_sites;
          Alcotest.test_case "compare" `Quick test_planner_compare;
          Alcotest.test_case "replan prunes failed nodes" `Quick
            test_planner_replan_prunes_failed;
          Alcotest.test_case "replan against reference" `Quick
            test_planner_replan_reference;
          Alcotest.test_case "replan errors" `Quick test_planner_replan_errors;
          Alcotest.test_case "replan never raises" `Quick
            test_planner_replan_never_raises;
        ] );
      ( "equivalence",
        [
          Alcotest.test_case "orsay 200" `Quick test_equivalence_orsay;
          Alcotest.test_case "two-node boundary" `Quick
            test_equivalence_two_node_boundary;
        ] );
      ( "replan_incremental",
        [
          Alcotest.test_case "empty crash set is identity" `Quick
            test_replan_incremental_empty_crash;
          Alcotest.test_case "modes and errors" `Quick
            test_replan_incremental_modes;
          Alcotest.test_case "recovered nodes re-admitted" `Quick
            test_replan_incremental_readmission;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_heuristic_always_valid;
            prop_heuristic_dominates_star;
            prop_improver_preserves_validity;
            prop_normalize_always_validates;
            prop_heuristic_bounded_by_oracle;
            prop_dary_valid_and_spanning;
            prop_pooled_matches_reference;
            prop_replan_incremental_within_slack;
          ] );
    ]
