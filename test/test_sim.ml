(* Tests for Adept_sim: event queue, engine, resources, network,
   middleware request flow, stats, scenarios. *)

module Event_queue = Adept_sim.Event_queue
module Engine = Adept_sim.Engine
module Resource = Adept_sim.Resource
module Network = Adept_sim.Network
module Trace = Adept_sim.Trace
module Middleware = Adept_sim.Middleware
module Faults = Adept_sim.Faults
module Run_stats = Adept_sim.Run_stats
module Scenario = Adept_sim.Scenario
module Params = Adept_model.Params
module Platform = Adept_platform.Platform
module Tree = Adept_hierarchy.Tree

let params = Params.diet_lyon

let check_close ?(eps = 1e-9) name expected got =
  Alcotest.(check (float (eps *. Float.max 1.0 (Float.abs expected)))) name expected got

(* ---------- Event_queue ---------- *)

let test_queue_ordering () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:3.0 "c";
  Event_queue.add q ~time:1.0 "a";
  Event_queue.add q ~time:2.0 "b";
  let pop () = match Event_queue.pop_min q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "time order" [ "a"; "b"; "c" ] [ first; second; third ]

let test_queue_fifo_ties () =
  let q = Event_queue.create () in
  Event_queue.add q ~time:1.0 "first";
  Event_queue.add q ~time:1.0 "second";
  Event_queue.add q ~time:1.0 "third";
  let pop () = match Event_queue.pop_min q with Some (_, v) -> v | None -> "?" in
  let first = pop () in
  let second = pop () in
  let third = pop () in
  Alcotest.(check (list string)) "insertion order on ties" [ "first"; "second"; "third" ]
    [ first; second; third ]

let test_queue_size_empty () =
  let q = Event_queue.create () in
  Alcotest.(check bool) "empty" true (Event_queue.is_empty q);
  Event_queue.add q ~time:0.0 ();
  Alcotest.(check int) "size 1" 1 (Event_queue.size q);
  ignore (Event_queue.pop_min q);
  Alcotest.(check (option (pair (float 0.0) unit))) "pop empty" None (Event_queue.pop_min q)

let test_queue_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "nan" (Invalid_argument "Event_queue.add: NaN time") (fun () ->
      Event_queue.add q ~time:Float.nan ())

let test_queue_stress_sorted () =
  let q = Event_queue.create () in
  let rng = Adept_util.Rng.create 99 in
  let times = Array.init 2000 (fun _ -> Adept_util.Rng.float rng 100.0) in
  Array.iter (fun t -> Event_queue.add q ~time:t ()) times;
  let out = ref [] in
  let rec drain () =
    match Event_queue.pop_min q with
    | Some (t, ()) ->
        out := t :: !out;
        drain ()
    | None -> ()
  in
  drain ();
  let popped = Array.of_list (List.rev !out) in
  Array.sort Float.compare times;
  Alcotest.(check bool) "heap = sort" true (popped = times)

(* ---------- Engine ---------- *)

let test_engine_runs_in_order () =
  let e = Engine.create () in
  let log = ref [] in
  Engine.schedule_at e ~time:2.0 (fun () -> log := "b" :: !log);
  Engine.schedule_at e ~time:1.0 (fun () -> log := "a" :: !log);
  ignore (Engine.run e);
  Alcotest.(check (list string)) "order" [ "a"; "b" ] (List.rev !log);
  check_close "clock at last event" 2.0 (Engine.now e)

let test_engine_horizon () =
  let e = Engine.create () in
  let fired = ref false in
  Engine.schedule_at e ~time:10.0 (fun () -> fired := true);
  let outcome = Engine.run ~until:5.0 e in
  Alcotest.(check bool) "not fired" false !fired;
  Alcotest.(check bool) "horizon outcome" true (outcome = Engine.Horizon_reached);
  check_close "clock at horizon" 5.0 (Engine.now e);
  Alcotest.(check int) "event still pending" 1 (Engine.pending e)

let test_engine_event_limit () =
  let e = Engine.create () in
  let rec reschedule () = Engine.schedule e ~delay:1.0 reschedule in
  reschedule ();
  let outcome = Engine.run ~max_events:100 e in
  Alcotest.(check bool) "limit outcome" true (outcome = Engine.Event_limit)

let test_engine_past_schedule () =
  let e = Engine.create () in
  Engine.schedule_at e ~time:5.0 (fun () ->
      Alcotest.(check bool) "past raises" true
        (match Engine.schedule_at e ~time:1.0 (fun () -> ()) with
        | exception Invalid_argument _ -> true
        | _ -> false));
  ignore (Engine.run e)

let test_engine_nested_scheduling () =
  let e = Engine.create () in
  let total = ref 0 in
  Engine.schedule_at e ~time:1.0 (fun () ->
      incr total;
      Engine.schedule e ~delay:0.5 (fun () -> incr total));
  ignore (Engine.run e);
  Alcotest.(check int) "both fired" 2 !total;
  check_close "clock" 1.5 (Engine.now e)

let test_engine_exhausted_advances_to_horizon () =
  let e = Engine.create () in
  let outcome = Engine.run ~until:3.0 e in
  Alcotest.(check bool) "exhausted" true (outcome = Engine.Exhausted);
  check_close "clock moved to horizon" 3.0 (Engine.now e)

(* ---------- Resource ---------- *)

let test_resource_serial_booking () =
  let r = Resource.create ~name:"x" ~power:100.0 in
  let f1 = Resource.book r ~now:0.0 ~duration:2.0 in
  check_close "finish" 2.0 f1;
  let f2 = Resource.book r ~now:1.0 ~duration:1.0 in
  check_close "queued behind" 3.0 f2;
  let f3 = Resource.book r ~now:10.0 ~duration:1.0 in
  check_close "idle gap start" 11.0 f3

let test_resource_backlog_busy () =
  let r = Resource.create ~name:"x" ~power:1.0 in
  ignore (Resource.book r ~now:0.0 ~duration:5.0);
  check_close "backlog" 3.0 (Resource.backlog r ~now:2.0);
  check_close "no backlog later" 0.0 (Resource.backlog r ~now:9.0);
  check_close "busy total" 5.0 (Resource.busy_seconds r);
  Alcotest.(check int) "bookings" 1 (Resource.bookings r)

let test_resource_charge () =
  let r = Resource.create ~name:"x" ~power:1.0 in
  Resource.charge r ~now:0.0 ~duration:2.0;
  check_close "charge extends free_at" 2.0 (Resource.free_at r);
  check_close "charge counts busy" 2.0 (Resource.busy_seconds r)

let test_resource_monotonic_now () =
  let r = Resource.create ~name:"x" ~power:1.0 in
  ignore (Resource.book r ~now:5.0 ~duration:1.0);
  Alcotest.(check bool) "backwards now rejected" true
    (match Resource.book r ~now:4.0 ~duration:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_resource_utilization () =
  let r = Resource.create ~name:"x" ~power:1.0 in
  ignore (Resource.book r ~now:0.0 ~duration:4.0);
  check_close "half busy" 0.5 (Resource.utilization r ~horizon:8.0)

let test_resource_validation () =
  Alcotest.(check bool) "zero power" true
    (match Resource.create ~name:"x" ~power:0.0 with
    | exception Invalid_argument _ -> true
    | _ -> false);
  let r = Resource.create ~name:"x" ~power:1.0 in
  Alcotest.(check bool) "negative duration" true
    (match Resource.book r ~now:0.0 ~duration:(-1.0) with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Network ---------- *)

let test_network_port_to_port () =
  let e = Engine.create () in
  let src = Resource.create ~name:"s" ~power:1.0 in
  let dst = Resource.create ~name:"d" ~power:1.0 in
  let delivered_at = ref Float.nan in
  Network.transfer e ~bandwidth:10.0 ~src:(Network.Port src) ~src_size:5.0
    ~dst:(Network.Port dst) ~dst_size:20.0
    ~on_delivered:(fun () -> delivered_at := Engine.now e)
    ();
  ignore (Engine.run e);
  (* send 0.5s, then receive 2.0s at the destination *)
  check_close "delivery time" 2.5 !delivered_at;
  check_close "src busy" 0.5 (Resource.busy_seconds src);
  check_close "dst busy" 2.0 (Resource.busy_seconds dst)

let test_network_latency () =
  let e = Engine.create () in
  let delivered_at = ref Float.nan in
  Network.transfer e ~bandwidth:10.0 ~latency:0.25 ~src:Network.Instant ~src_size:0.0
    ~dst:Network.Instant ~dst_size:0.0
    ~on_delivered:(fun () -> delivered_at := Engine.now e)
    ();
  ignore (Engine.run e);
  check_close "latency only" 0.25 !delivered_at

let test_network_lane_charges_but_does_not_delay () =
  let e = Engine.create () in
  let dst = Resource.create ~name:"d" ~power:1.0 in
  (* pre-load the destination with 10s of work *)
  ignore (Resource.book dst ~now:0.0 ~duration:10.0);
  let delivered_at = ref Float.nan in
  Network.transfer e ~bandwidth:1.0 ~src:Network.Instant ~src_size:0.0
    ~dst:(Network.Lane dst) ~dst_size:2.0
    ~on_delivered:(fun () -> delivered_at := Engine.now e)
    ();
  ignore (Engine.run e);
  check_close "delivered immediately" 0.0 !delivered_at;
  check_close "capacity still charged" 12.0 (Resource.busy_seconds dst)

let test_network_queueing_contention () =
  let e = Engine.create () in
  let src = Resource.create ~name:"s" ~power:1.0 in
  let deliveries = ref [] in
  for _ = 1 to 3 do
    Network.transfer e ~bandwidth:1.0 ~src:(Network.Port src) ~src_size:1.0
      ~dst:Network.Instant ~dst_size:0.0
      ~on_delivered:(fun () -> deliveries := Engine.now e :: !deliveries)
      ()
  done;
  ignore (Engine.run e);
  Alcotest.(check (list (float 1e-9))) "serialized sends" [ 1.0; 2.0; 3.0 ]
    (List.rev !deliveries)

let test_network_validation () =
  let e = Engine.create () in
  Alcotest.(check bool) "zero bandwidth" true
    (match
       Network.transfer e ~bandwidth:0.0 ~src:Network.Instant ~src_size:0.0
         ~dst:Network.Instant ~dst_size:0.0
         ~on_delivered:(fun () -> ())
         ()
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Trace ---------- *)

let test_trace_records () =
  let t = Trace.create () in
  Trace.record_message t ~kind:Trace.Sched_request ~role:Trace.Agent_end ~size:2.0;
  Trace.record_message t ~kind:Trace.Sched_request ~role:Trace.Agent_end ~size:4.0;
  Alcotest.(check int) "count" 2 (Trace.message_count t Trace.Sched_request Trace.Agent_end);
  Alcotest.(check (option (float 1e-9))) "mean" (Some 3.0)
    (Trace.mean_message_size t Trace.Sched_request Trace.Agent_end);
  Alcotest.(check (option (float 1e-9))) "other bucket empty" None
    (Trace.mean_message_size t Trace.Sched_reply Trace.Server_end);
  check_close "total" 6.0 (Trace.total_mbit t)

let test_trace_disabled () =
  let t = Trace.disabled in
  Trace.record_message t ~kind:Trace.Sched_request ~role:Trace.Agent_end ~size:2.0;
  Trace.record_agent_reply_compute t ~degree:3 ~seconds:1.0;
  Alcotest.(check int) "records nothing" 0
    (Trace.message_count t Trace.Sched_request Trace.Agent_end);
  Alcotest.(check int) "no samples" 0 (Array.length (Trace.reply_samples t));
  Alcotest.(check bool) "flagged disabled" false (Trace.is_enabled t)

let test_trace_samples () =
  let t = Trace.create () in
  Trace.record_agent_reply_compute t ~degree:2 ~seconds:0.5;
  Trace.record_agent_request_compute t ~seconds:0.1;
  Trace.record_server_prediction t ~seconds:0.2;
  Alcotest.(check int) "reply samples" 1 (Array.length (Trace.reply_samples t));
  Alcotest.(check (pair int (float 0.0))) "sample content" (2, 0.5)
    (Trace.reply_samples t).(0);
  Alcotest.(check int) "request computes" 1 (Array.length (Trace.agent_request_computes t));
  Alcotest.(check int) "predictions" 1 (Array.length (Trace.server_predictions t))

(* ---------- Middleware ---------- *)

let star_platform n_servers =
  Adept_platform.Generator.grid5000_lyon ~n:(n_servers + 1) ()

let star_tree platform =
  let nodes = Platform.nodes platform in
  Tree.star (List.hd nodes) (List.tl nodes)

let test_middleware_single_request_timing () =
  (* Hand-check the full scheduling+service path of one request through a
     1-agent 1-server star against the Eqs. 1-5 cost accounting. *)
  let platform = star_platform 1 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m = Middleware.deploy ~engine ~params ~platform tree in
  let wapp = 16.0 in
  let b = 100.0 and w = 730.0 in
  let done_at = ref Float.nan in
  Middleware.submit m ~wapp
    ~on_scheduled:(fun ~server ->
      Middleware.request_service m ~server ~wapp
        ~on_done:(fun () -> done_at := Engine.now engine)
        ())
    ();
  ignore (Engine.run engine);
  let sched =
    (params.Params.agent.sreq /. b) (* client -> root receive *)
    +. (params.Params.agent.wreq /. w) (* Wreq *)
    +. (params.Params.agent.sreq /. b) (* root -> server send *)
    +. (params.Params.server.wpre /. w) (* prediction (lane) *)
    +. (params.Params.server.srep /. b) (* server send (lane wire time) *)
    +. (params.Params.agent.srep /. b) (* root receive reply *)
    +. (Params.wrep params ~degree:1 /. w) (* Wrep(1) *)
    +. (params.Params.agent.srep /. b) (* root -> client send *)
  in
  let service =
    (params.Params.server.sreq /. b) +. (wapp /. w) +. (params.Params.server.srep /. b)
  in
  check_close ~eps:1e-9 "end-to-end latency" (sched +. service) !done_at

let test_middleware_selects_stronger_server () =
  (* heterogeneous star: the faster server should win the first request *)
  let nodes =
    [
      Adept_platform.Node.make ~id:0 ~name:"agent" ~power:730.0 ();
      Adept_platform.Node.make ~id:1 ~name:"slow" ~power:100.0 ();
      Adept_platform.Node.make ~id:2 ~name:"fast" ~power:1000.0 ();
    ]
  in
  let platform =
    Platform.create ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ()) nodes
  in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m = Middleware.deploy ~engine ~params ~platform tree in
  let chosen = ref (-1) in
  Middleware.submit m ~wapp:16.0 ~on_scheduled:(fun ~server -> chosen := server) ();
  ignore (Engine.run engine);
  Alcotest.(check int) "fast server chosen" 2 !chosen

let test_middleware_round_robin () =
  let platform = star_platform 3 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m =
    Middleware.deploy ~selection:Middleware.Round_robin ~engine ~params ~platform tree
  in
  let chosen = ref [] in
  let rec submit k =
    if k > 0 then
      Middleware.submit m ~wapp:1.0
        ~on_scheduled:(fun ~server ->
          chosen := server :: !chosen;
          submit (k - 1))
        ()
  in
  submit 6;
  ignore (Engine.run engine);
  let counts = List.sort_uniq Int.compare !chosen in
  Alcotest.(check int) "all three servers used" 3 (List.length counts)

let test_middleware_two_level_flow () =
  (* root -> 2 agents -> 2 servers each; one request must reach all four
     servers for prediction and come back *)
  let powers = List.init 7 (fun _ -> 730.0) in
  let platform = Platform.of_powers ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ()) powers in
  let n i = Platform.node platform i in
  let tree =
    Tree.agent (n 0)
      [
        Tree.agent (n 1) [ Tree.server (n 3); Tree.server (n 4) ];
        Tree.agent (n 2) [ Tree.server (n 5); Tree.server (n 6) ];
      ]
  in
  let engine = Engine.create () in
  let trace = Trace.create () in
  let m = Middleware.deploy ~trace ~engine ~params ~platform tree in
  let completed = ref false in
  Middleware.submit m ~wapp:1.0
    ~on_scheduled:(fun ~server ->
      Alcotest.(check bool) "a server was chosen" true (server >= 3);
      Middleware.request_service m ~server ~wapp:1.0
        ~on_done:(fun () -> completed := true)
        ())
    ();
  ignore (Engine.run engine);
  Alcotest.(check bool) "completed" true !completed;
  Alcotest.(check int) "4 predictions" 4 (Array.length (Trace.server_predictions trace));
  (* root computes one Wrep(2), each mid agent one Wrep(2) *)
  Alcotest.(check int) "3 reply aggregations" 3 (Array.length (Trace.reply_samples trace))

let test_middleware_database_selection () =
  (* heterogeneous star under Database selection with fast reports: load
     still lands and the system completes requests *)
  let nodes =
    [
      Adept_platform.Node.make ~id:0 ~name:"agent" ~power:730.0 ();
      Adept_platform.Node.make ~id:1 ~name:"s1" ~power:500.0 ();
      Adept_platform.Node.make ~id:2 ~name:"s2" ~power:900.0 ();
    ]
  in
  let platform =
    Platform.create ~link:(Adept_platform.Link.homogeneous ~bandwidth:100.0 ()) nodes
  in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m =
    Middleware.deploy ~selection:Middleware.Database ~monitoring_period:0.01 ~engine
      ~params ~platform tree
  in
  let completed = ref 0 in
  let rec loop k =
    if k > 0 then
      Middleware.submit m ~wapp:16.0
        ~on_scheduled:(fun ~server ->
          Middleware.request_service m ~server ~wapp:16.0
            ~on_done:(fun () ->
              incr completed;
              loop (k - 1))
            ())
        ()
  in
  loop 20;
  ignore (Engine.run ~until:30.0 engine);
  Alcotest.(check int) "all requests completed" 20 !completed

let test_middleware_database_requires_period () =
  let platform = star_platform 1 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  Alcotest.(check bool) "missing period rejected" true
    (match
       Middleware.deploy ~selection:Middleware.Database ~engine ~params ~platform tree
     with
    | exception Invalid_argument _ -> true
    | _ -> false);
  Alcotest.(check bool) "bad period rejected" true
    (match
       Middleware.deploy ~monitoring_period:0.0 ~engine ~params ~platform tree
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_middleware_deploy_validates () =
  let platform = star_platform 1 in
  let bad = Tree.server (Platform.node platform 0) in
  let engine = Engine.create () in
  Alcotest.(check bool) "invalid tree rejected" true
    (match Middleware.deploy ~engine ~params ~platform bad with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_middleware_service_to_agent_rejected () =
  let platform = star_platform 1 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m = Middleware.deploy ~engine ~params ~platform tree in
  Alcotest.(check bool) "agent target rejected" true
    (match Middleware.request_service m ~server:0 ~wapp:1.0 ~on_done:(fun () -> ()) () with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_middleware_ids () =
  let platform = star_platform 2 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let m = Middleware.deploy ~engine ~params ~platform tree in
  Alcotest.(check int) "root" 0 (Middleware.root m);
  Alcotest.(check (list int)) "servers" [ 1; 2 ] (Middleware.server_ids m);
  Alcotest.(check (list int)) "agents" [ 0 ] (Middleware.agent_ids m)

(* ---------- Run_stats ---------- *)

let test_run_stats () =
  let s = Run_stats.create () in
  Run_stats.record_issue s ~time:0.0;
  Run_stats.record_issue s ~time:0.5;
  Run_stats.record_completion s ~issued_at:0.0 ~time:1.0 ~server:3;
  Run_stats.record_completion s ~issued_at:0.5 ~time:2.0 ~server:3;
  Alcotest.(check int) "issued" 2 (Run_stats.issued s);
  Alcotest.(check int) "completed" 2 (Run_stats.completed s);
  Alcotest.(check int) "window count" 1 (Run_stats.completions_in s ~t0:1.5 ~t1:2.5);
  check_close "throughput" 1.0 (Run_stats.throughput s ~t0:1.5 ~t1:2.5);
  Alcotest.(check (list (pair int int))) "per server" [ (3, 2) ] (Run_stats.per_server s);
  check_close "mean response" 1.25 (Option.get (Run_stats.mean_response_time s))

let test_run_stats_empty_window () =
  let s = Run_stats.create () in
  Alcotest.(check bool) "bad window" true
    (match Run_stats.throughput s ~t0:1.0 ~t1:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

(* ---------- Scenario ---------- *)

let scenario ?selection ?(servers = 2) ?(dgemm = 200) () =
  let platform = star_platform servers in
  let tree = star_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make dgemm) in
  Scenario.make ?selection ~params ~platform
    ~client:(Adept_workload.Client.closed_loop job) tree

let test_scenario_matches_model () =
  let s = scenario () in
  let r = Scenario.run_fixed s ~clients:20 ~warmup:1.0 ~duration:3.0 in
  let platform = s.Scenario.platform in
  let rho =
    Adept.Evaluate.rho_on params ~platform ~wapp:Adept_workload.Dgemm.(mflops (make 200))
      s.Scenario.tree
  in
  Alcotest.(check bool) "within 5% of Eq. 16" true
    (Float.abs (r.Scenario.throughput -. rho) /. rho < 0.05)

let test_scenario_deterministic () =
  let r1 = Scenario.run_fixed (scenario ()) ~clients:10 ~warmup:0.5 ~duration:1.0 in
  let r2 = Scenario.run_fixed (scenario ()) ~clients:10 ~warmup:0.5 ~duration:1.0 in
  check_close "same throughput" r1.Scenario.throughput r2.Scenario.throughput;
  Alcotest.(check int) "same completions" r1.Scenario.completed_total
    r2.Scenario.completed_total

let test_scenario_conservation () =
  let r = Scenario.run_fixed (scenario ()) ~clients:15 ~warmup:0.5 ~duration:1.0 in
  Alcotest.(check bool) "completed <= issued" true
    (r.Scenario.completed_total <= r.Scenario.issued_total);
  let per_server_total =
    List.fold_left (fun acc (_, c) -> acc + c) 0 r.Scenario.per_server
  in
  Alcotest.(check int) "per-server sums to completed" r.Scenario.completed_total
    per_server_total

let test_scenario_series_monotone_until_saturation () =
  let series =
    Scenario.throughput_series (scenario ()) ~client_counts:[ 1; 4; 16 ] ~warmup:1.0
      ~duration:2.0
  in
  match List.map snd series with
  | [ t1; t4; t16 ] ->
      Alcotest.(check bool) "1 < 4 clients" true (t1 < t4);
      Alcotest.(check bool) "16 clients saturated >= 4 * 0.9" true (t16 >= t4 *. 0.9)
  | _ -> Alcotest.fail "series shape"

let test_scenario_saturation () =
  let clients, throughput =
    Scenario.saturation_throughput (scenario ()) ~warmup:0.5 ~duration:1.5
  in
  Alcotest.(check bool) "found saturation" true (clients >= 1);
  Alcotest.(check bool) "near model" true (Float.abs (throughput -. 90.7) < 6.0)

let test_scenario_validation () =
  Alcotest.(check bool) "zero clients" true
    (match Scenario.run_fixed (scenario ()) ~clients:0 ~warmup:0.0 ~duration:1.0 with
    | exception Invalid_argument _ -> true
    | _ -> false)

let test_scenario_open_loop_tracks_rate () =
  (* star-2 sustains ~91 req/s; a 40 req/s Poisson stream must pass through *)
  let s = scenario () in
  let r = Scenario.run_open s ~rate:40.0 ~warmup:2.0 ~duration:8.0 in
  Alcotest.(check bool)
    (Printf.sprintf "throughput %.1f tracks the 40 req/s arrivals" r.Scenario.throughput)
    true
    (Float.abs (r.Scenario.throughput -. 40.0) < 5.0);
  (* below saturation, responses stay near the no-load service time *)
  let p95 = Option.get r.Scenario.p95_response in
  Alcotest.(check bool) (Printf.sprintf "bounded p95 %.3f" p95) true (p95 < 0.5)

let test_scenario_open_loop_overload_backlogs () =
  (* 3x the capacity: completions cap at rho and latency keeps growing *)
  let s = scenario () in
  let r = Scenario.run_open s ~rate:270.0 ~warmup:2.0 ~duration:8.0 in
  Alcotest.(check bool)
    (Printf.sprintf "completions capped near capacity (got %.1f)" r.Scenario.throughput)
    true
    (r.Scenario.throughput < 110.0);
  Alcotest.(check bool) "backlog builds" true
    (r.Scenario.issued_total > r.Scenario.completed_total + 100)

let test_scenario_open_loop_deterministic () =
  let r1 = Scenario.run_open (scenario ()) ~rate:30.0 ~warmup:1.0 ~duration:3.0 in
  let r2 = Scenario.run_open (scenario ()) ~rate:30.0 ~warmup:1.0 ~duration:3.0 in
  Alcotest.(check int) "same issued" r1.Scenario.issued_total r2.Scenario.issued_total;
  Alcotest.(check (float 1e-9)) "same throughput" r1.Scenario.throughput
    r2.Scenario.throughput

let test_scenario_percentiles_ordered () =
  let r = Scenario.run_fixed (scenario ()) ~clients:20 ~warmup:1.0 ~duration:3.0 in
  let mean = Option.get r.Scenario.mean_response in
  let p95 = Option.get r.Scenario.p95_response in
  Alcotest.(check bool) "p95 >= mean for right-skewed latencies" true (p95 >= mean *. 0.5);
  Alcotest.(check bool) "both positive" true (mean > 0.0 && p95 > 0.0)

let test_scenario_think_time_lowers_load () =
  let platform = star_platform 1 in
  let tree = star_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let lazy_client =
    Adept_workload.Client.make ~think_time:1.0 (Adept_workload.Mix.single job)
  in
  let s = Scenario.make ~params ~platform ~client:lazy_client tree in
  let r = Scenario.run_fixed s ~clients:5 ~warmup:1.0 ~duration:4.0 in
  (* 5 clients with >= 1s cycle each can at most do ~5 req/s *)
  Alcotest.(check bool) "throttled by think time" true (r.Scenario.throughput < 6.0)

(* ---------- Faults ---------- *)

let test_faults_none_inert () =
  Alcotest.(check bool) "none is none" true (Faults.is_none Faults.none);
  Alcotest.(check bool) "make () is none" true (Faults.is_none (Faults.make_exn ()));
  Alcotest.(check bool) "a crash is not none" false
    (Faults.is_none (Faults.crash ~node:1 ~at:1.0 (Faults.make_exn ())));
  Alcotest.(check bool) "message loss is not none" false
    (Faults.is_none
       (Faults.with_message_loss ~probability:0.1 ~seed:3 (Faults.make_exn ())))

let test_faults_validation () =
  let invalid f = match f () with exception Invalid_argument _ -> true | _ -> false in
  Alcotest.(check bool) "recover before crash" true
    (invalid (fun () -> Faults.crash ~node:1 ~at:2.0 ~recover_at:1.0 (Faults.make_exn ())));
  Alcotest.(check bool) "probability >= 1" true
    (invalid (fun () ->
         Faults.with_message_loss ~probability:1.0 ~seed:1 (Faults.make_exn ())));
  Alcotest.(check bool) "zero degradation factor" true
    (invalid (fun () -> Faults.degrade ~from_:0.0 ~until:1.0 ~factor:0.0 (Faults.make_exn ())));
  Alcotest.(check bool) "backoff below 1" true
    (invalid (fun () -> Faults.make_exn ~backoff:0.5 ()));
  (* Faults.make itself never raises: each bad parameter is a typed
     Invalid_input naming the offender. *)
  let invalid_input label = function
    | Error (Adept.Error.Invalid_input _) -> ()
    | Error e ->
        Alcotest.fail (label ^ ": wrong error " ^ Adept.Error.to_string e)
    | Ok _ -> Alcotest.fail (label ^ ": accepted")
  in
  invalid_input "zero timeout" (Faults.make ~timeout:0.0 ());
  invalid_input "negative service_timeout" (Faults.make ~service_timeout:(-1.0) ());
  invalid_input "negative retries" (Faults.make ~max_retries:(-1) ());
  invalid_input "backoff below 1" (Faults.make ~backoff:0.5 ());
  invalid_input "nan patience" (Faults.make ~patience:Float.nan ());
  Alcotest.(check bool) "good parameters accepted" true
    (Result.is_ok (Faults.make ~timeout:1.0 ~backoff:1.0 ~max_retries:0 ()))

let test_faults_bandwidth_factor () =
  let f =
    Faults.make_exn ()
    |> Faults.degrade ~from_:1.0 ~until:2.0 ~factor:0.5
    |> Faults.degrade ~from_:1.5 ~until:3.0 ~factor:0.5
  in
  check_close "outside all windows" 1.0 (Faults.bandwidth_factor f ~now:0.5);
  check_close "inside one window" 0.5 (Faults.bandwidth_factor f ~now:1.2);
  check_close "overlapping windows multiply" 0.25 (Faults.bandwidth_factor f ~now:1.7)

let test_faults_seeded_crashes_deterministic () =
  let gen seed =
    Faults.seeded_crashes
      ~rng:(Adept_util.Rng.create seed)
      ~nodes:[ 1; 2; 3 ] ~rate:0.5 ~mttr:1.0 ~horizon:10.0 (Faults.make_exn ())
  in
  let events seed =
    List.map
      (fun (e : Faults.node_event) -> (e.Faults.node, e.Faults.at, e.Faults.kind))
      (Faults.events_before (gen seed) ~horizon:10.0)
  in
  Alcotest.(check bool) "same seed, same schedule" true (events 4 = events 4);
  Alcotest.(check bool) "non-empty at rate 0.5 over 10s" true (events 4 <> []);
  let times = List.map (fun (_, t, _) -> t) (events 4) in
  Alcotest.(check bool) "chronological" true (List.sort Float.compare times = times)

(* A structural fingerprint of everything a trace records; exact float
   equality throughout — the determinism regression compares these. *)
let trace_fingerprint tr =
  let kinds =
    [ Trace.Sched_request; Trace.Sched_reply; Trace.Service_request; Trace.Service_reply ]
  in
  let roles = [ Trace.Agent_end; Trace.Server_end; Trace.Client_end ] in
  let counts =
    List.concat_map (fun k -> List.map (fun r -> Trace.message_count tr k r) roles) kinds
  in
  ( counts,
    Trace.total_mbit tr,
    Trace.agent_request_computes tr,
    Trace.reply_samples tr,
    Trace.server_predictions tr,
    Trace.failures tr )

let fault_scenario ?faults ~seed () =
  let platform = star_platform 3 in
  let tree = star_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  Scenario.make ?faults ~seed ~params ~platform
    ~client:(Adept_workload.Client.closed_loop job) tree

let test_scenario_empty_faults_bit_identical () =
  (* the ISSUE's determinism regression: a run with no fault argument, one
     with Faults.none and one with an empty Faults.make () must produce
     identical traces and stats — the fault machinery may not perturb the
     event stream at all when inert *)
  let run faults =
    let s = fault_scenario ?faults ~seed:5 () in
    let trace = Trace.create () in
    let r = Scenario.run_fixed ~trace s ~clients:12 ~warmup:0.5 ~duration:2.0 in
    (r, trace_fingerprint trace)
  in
  let r0, f0 = run None in
  let r1, f1 = run (Some Faults.none) in
  let r2, f2 = run (Some (Faults.make_exn ())) in
  Alcotest.(check bool) "Faults.none: identical trace" true (f1 = f0);
  Alcotest.(check bool) "Faults.make_exn (): identical trace" true (f2 = f0);
  List.iter
    (fun (name, (r : Scenario.run_result)) ->
      Alcotest.(check (float 0.0)) (name ^ ": throughput bit-identical")
        r0.Scenario.throughput r.Scenario.throughput;
      Alcotest.(check int) (name ^ ": completed") r0.Scenario.completed_total
        r.Scenario.completed_total;
      Alcotest.(check int) (name ^ ": issued") r0.Scenario.issued_total
        r.Scenario.issued_total;
      Alcotest.(check int) (name ^ ": nothing lost") 0 r.Scenario.lost_total;
      Alcotest.(check (option (float 0.0))) (name ^ ": mean response")
        r0.Scenario.mean_response r.Scenario.mean_response;
      Alcotest.(check bool) (name ^ ": fault stats all zero") true
        (r.Scenario.faults = r0.Scenario.faults
        && r.Scenario.faults.Middleware.crashes = 0
        && r.Scenario.faults.Middleware.messages_lost = 0
        && r.Scenario.faults.Middleware.recovery_latencies = []))
    [ ("Faults.none", r1); ("Faults.make_exn ()", r2) ];
  let _, _, _, _, _, failures = f0 in
  Alcotest.(check int) "no failure events" 0 (List.length failures)

let test_scenario_rtrace_rate_zero_bit_identical () =
  (* the ISSUE's determinism regression, extended to request tracing: a
     run with no trace store, one with a rate-0 store and one with a
     rate-1 store must replay the exact same event stream — tracing is
     observation-only *)
  let run rtrace =
    let s = fault_scenario ~seed:5 () in
    let trace = Trace.create () in
    let r = Scenario.run_fixed ~trace ?rtrace s ~clients:12 ~warmup:0.5 ~duration:2.0 in
    (r.Scenario.throughput, r.Scenario.completed_total, r.Scenario.issued_total,
     r.Scenario.mean_response, trace_fingerprint trace)
  in
  let off = Adept_obs.Request_trace.create ~sample_rate:0.0 () in
  let on = Adept_obs.Request_trace.create ~sample_rate:1.0 () in
  let plain = run None in
  Alcotest.(check bool) "rate 0 bit-identical to no store" true
    (run (Some off) = plain);
  Alcotest.(check bool) "rate 1 bit-identical to no store" true
    (run (Some on) = plain);
  Alcotest.(check int) "rate 0 sampled nothing" 0
    (Adept_obs.Request_trace.sampled off);
  Alcotest.(check bool) "rate 0 still assigned ids" true
    (Adept_obs.Request_trace.requests_seen off > 0);
  Alcotest.(check bool) "rate 1 finished traces" true
    (Adept_obs.Request_trace.finished on > 0)

let test_scenario_fault_run_deterministic () =
  (* same non-trivial fault schedule + same seed => identical everything,
     including the message-loss stream *)
  let run () =
    let faults =
      Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
      |> Faults.crash ~node:1 ~at:1.2 ~recover_at:2.6
      |> Faults.with_message_loss ~probability:0.05 ~seed:9
    in
    let s = fault_scenario ~faults ~seed:5 () in
    let trace = Trace.create () in
    let r = Scenario.run_fixed ~trace s ~clients:12 ~warmup:0.5 ~duration:2.5 in
    ( r.Scenario.throughput,
      r.Scenario.completed_total,
      r.Scenario.issued_total,
      r.Scenario.lost_total,
      r.Scenario.faults,
      trace_fingerprint trace )
  in
  Alcotest.(check bool) "fault run replays identically" true (run () = run ())

let test_scenario_crash_metrics_nonzero () =
  (* the ISSUE's fault-path test: a server crash mid-run must surface in
     every fault metric — lost requests, recovery latency, prune/rejoin *)
  let platform = star_platform 2 in
  let tree = star_tree platform in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
  let faults =
    Faults.make_exn ~timeout:0.3 ~service_timeout:0.4 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.5 ~recover_at:3.5
  in
  let s =
    Scenario.make ~faults ~seed:3 ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  let trace = Trace.create () in
  let r = Scenario.run_fixed ~trace s ~clients:10 ~warmup:1.0 ~duration:4.0 in
  let fs = r.Scenario.faults in
  Alcotest.(check int) "one crash" 1 fs.Middleware.crashes;
  Alcotest.(check int) "one recovery" 1 fs.Middleware.recoveries;
  Alcotest.(check bool) "parent pruned the dead child" true (fs.Middleware.prunes >= 1);
  Alcotest.(check bool) "child rejoined after recovery" true (fs.Middleware.rejoins >= 1);
  Alcotest.(check bool) "lost requests recorded" true (r.Scenario.lost_total > 0);
  Alcotest.(check bool) "recovery latencies recorded and positive" true
    (fs.Middleware.recovery_latencies <> []
    && List.for_all (fun l -> l > 0.0) fs.Middleware.recovery_latencies);
  Alcotest.(check bool) "failure events traced" true (Trace.failure_count trace > 0);
  Alcotest.(check bool) "crash event present" true
    (List.exists (fun (_, f) -> f = Trace.Node_crash 1) (Trace.failures trace));
  Alcotest.(check bool) "prune event names agent and child" true
    (List.exists
       (fun (_, f) -> match f with Trace.Child_pruned (0, 1) -> true | _ -> false)
       (Trace.failures trace));
  Alcotest.(check bool) "the surviving server keeps completing" true
    (r.Scenario.completed_total > 0);
  Alcotest.(check bool) "conservation with losses" true
    (r.Scenario.completed_total + r.Scenario.lost_total <= r.Scenario.issued_total);
  Alcotest.(check int) "trace latencies match middleware stats"
    (List.length fs.Middleware.recovery_latencies)
    (Array.length (Trace.recovery_latencies trace))

let test_scenario_message_loss_metrics () =
  let faults =
    Faults.make_exn ~timeout:0.3 ~service_timeout:0.5 ()
    |> Faults.with_message_loss ~probability:0.15 ~seed:11
  in
  let s = fault_scenario ~faults ~seed:5 () in
  let r = Scenario.run_fixed s ~clients:8 ~warmup:1.0 ~duration:3.0 in
  let fs = r.Scenario.faults in
  Alcotest.(check bool) "messages dropped" true (fs.Middleware.messages_lost > 0);
  Alcotest.(check bool) "timeouts and retries happened" true (fs.Middleware.timeouts > 0);
  Alcotest.(check int) "no crashes" 0 fs.Middleware.crashes;
  Alcotest.(check bool) "the system still completes requests" true
    (r.Scenario.completed_total > 0)

let test_middleware_initial_dead_not_resurrected () =
  (* REVIEW regression: a generation deployed mid-run must inherit the
     previous generation's liveness — a node dead at enactment but kept
     in the new tree starts dead (it must not serve during its remaining
     downtime), its pending Recover event genuinely revives it, and the
     crash the old generation already counted is not re-counted. *)
  let platform = star_platform 3 in
  let tree = star_tree platform in
  let engine = Engine.create () in
  let faults =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:0.5 ~recover_at:3.0
  in
  let m0 = Middleware.deploy ~faults ~engine ~params ~platform tree in
  ignore (Engine.run ~until:1.0 engine);
  Alcotest.(check bool) "gen 0 saw the crash" false (Middleware.is_alive m0 1);
  Alcotest.(check (float 1e-9)) "crash time recorded" 0.5 (Middleware.crash_time m0 1);
  Middleware.retire m0;
  let m1 =
    Middleware.deploy ~faults ~engine ~params ~platform
      ~initial_dead:[ (1, Middleware.crash_time m0 1) ]
      tree
  in
  Alcotest.(check bool) "gen 1 starts with the node dead" false
    (Middleware.is_alive m1 1);
  Alcotest.(check (float 1e-9)) "crash time inherited" 0.5 (Middleware.crash_time m1 1);
  Alcotest.(check int) "the crash is not re-counted" 0
    (Middleware.fault_stats m1).Middleware.crashes;
  ignore (Engine.run ~until:4.0 engine);
  Alcotest.(check bool) "the pending Recover revives it in gen 1" true
    (Middleware.is_alive m1 1);
  Alcotest.(check int) "recovery counted once, in gen 1" 1
    (Middleware.fault_stats m1).Middleware.recoveries;
  Alcotest.(check int) "retired gen 0 counts no recovery" 0
    (Middleware.fault_stats m0).Middleware.recoveries

(* ---------- Controller ---------- *)

module Controller = Adept_sim.Controller

let controller_config ?(policy = Controller.Hysteresis) ?(threshold = 0.6)
    ?(min_gain = 0.05) () =
  match
    Controller.config ~sample_period:0.25 ~window:1.0 ~threshold ~hold_time:0.5
      ~cooldown:1.0 ~min_gain ~max_replans:4 ~restart_latency:0.3 ~state_mbit:1.0
      policy
  with
  | Ok c -> c
  | Error e -> Alcotest.fail (Adept.Error.to_string e)

let controller_scenario ?controller ~faults ~seed () =
  let platform = star_platform 3 in
  let tree = star_tree platform in
  (* 310x310 keeps the servers (not the agent) the binding resource, so
     losing one of three servers visibly degrades the observed rate *)
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  Scenario.make ?controller ~faults ~seed ~params ~platform
    ~client:(Adept_workload.Client.closed_loop job) tree

let test_controller_threshold_zero_bit_identical () =
  (* the ISSUE's determinism regression: a controller that can never see
     degradation (threshold 0) must not perturb the event stream — its
     sampling ticks ride along without touching any visible state *)
  let faults () =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.2 ~recover_at:2.6
  in
  let run controller =
    let s = controller_scenario ?controller ~faults:(faults ()) ~seed:5 () in
    let trace = Trace.create () in
    let r = Scenario.run_fixed ~trace s ~clients:12 ~warmup:0.5 ~duration:3.0 in
    (r, trace_fingerprint trace)
  in
  let r0, f0 = run None in
  let r1, f1 = run (Some (controller_config ~threshold:0.0 ())) in
  Alcotest.(check bool) "identical trace" true (f1 = f0);
  Alcotest.(check (float 0.0)) "throughput bit-identical" r0.Scenario.throughput
    r1.Scenario.throughput;
  Alcotest.(check int) "completed" r0.Scenario.completed_total r1.Scenario.completed_total;
  Alcotest.(check int) "issued" r0.Scenario.issued_total r1.Scenario.issued_total;
  Alcotest.(check int) "lost" r0.Scenario.lost_total r1.Scenario.lost_total;
  Alcotest.(check (option (float 0.0))) "mean response" r0.Scenario.mean_response
    r1.Scenario.mean_response;
  Alcotest.(check int) "no replans" 0 (List.length r1.Scenario.replans);
  Alcotest.(check int) "no migration losses" 0 r1.Scenario.migration_lost;
  Alcotest.(check (float 0.0)) "no degraded time" 0.0 r1.Scenario.degraded_seconds

let test_controller_enacts_on_permanent_crash () =
  (* a server lost for good degrades a 3-server star below threshold; the
     controller must replan around it and pay a real migration cost *)
  let faults =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.0
  in
  let s = controller_scenario ~controller:(controller_config ()) ~faults ~seed:7 () in
  let r = Scenario.run_fixed s ~clients:12 ~warmup:0.5 ~duration:6.0 in
  Alcotest.(check bool) "replanned at least once" true (r.Scenario.replans <> []);
  let first = List.hd r.Scenario.replans in
  Alcotest.(check bool) "the dead node is written off" true
    (List.mem 1 first.Controller.failed);
  Alcotest.(check bool) "predicted gain over the observed rate" true
    (first.Controller.rho_after > first.Controller.observed);
  Alcotest.(check bool) "the new hierarchy predicts less than the old" true
    (first.Controller.rho_after < first.Controller.rho_before);
  Alcotest.(check bool) "migration cost is real" true
    (first.Controller.migration_cost > 0.0);
  (* a dead star server is the simple-crash path: striking it out of the
     running hierarchy is within slack of any from-scratch star, so the
     controller must cite an incremental replan *)
  Alcotest.(check string) "planned incrementally" "incremental"
    (Adept.Planner.replan_mode_name first.Controller.mode);
  Alcotest.(check bool) "degraded time recorded" true (r.Scenario.degraded_seconds > 0.0);
  Alcotest.(check bool) "requests keep completing after the heal" true
    (r.Scenario.completed_total > 0)

(* ---------- Monitor ---------- *)

module Monitor = Adept_sim.Monitor
module Alert = Adept_obs.Alert
module Rule = Adept_obs.Rule

let test_engine_schedule_every () =
  let engine = Engine.create () in
  let ticks = ref [] in
  Engine.schedule_every engine ~interval:0.5 ~until:2.2 (fun ~now ->
      ticks := now :: !ticks);
  ignore (Engine.run engine);
  Alcotest.(check (list (float 1e-12)))
    "ticks at each interval up to the horizon" [ 0.5; 1.0; 1.5; 2.0 ]
    (List.rev !ticks);
  Alcotest.(check bool) "non-positive interval rejected" true
    (match
       Engine.schedule_every engine ~interval:0.0 ~until:1.0 (fun ~now:_ -> ())
     with
    | exception Invalid_argument _ -> true
    | _ -> false)

let star_monitor ~interval =
  let platform = star_platform 3 in
  let tree = star_tree platform in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  match
    Monitor.create ~interval
      ~selectors:(Monitor.default_selectors tree)
      (Monitor.model_rules ~params ~wapp tree)
  with
  | Ok m -> m
  | Error e -> Alcotest.fail (Adept.Error.to_string e)

let test_monitor_observation_only () =
  (* the tentpole's determinism regression: attaching the monitor (at any
     interval, 0 included) must not perturb the simulation — scrapes and
     alert evaluations only read sim state *)
  let faults () =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.0
  in
  let run interval =
    let s =
      controller_scenario ~controller:(controller_config ())
        ~faults:(faults ()) ~seed:7 ()
    in
    let trace = Trace.create () in
    let monitor = Option.map (fun i -> star_monitor ~interval:i) interval in
    let r =
      Scenario.run_fixed ~trace ?monitor s ~clients:12 ~warmup:0.5 ~duration:6.0
    in
    ( ( r.Scenario.throughput,
        r.Scenario.completed_total,
        r.Scenario.issued_total,
        r.Scenario.lost_total,
        r.Scenario.mean_response,
        r.Scenario.migration_lost,
        r.Scenario.degraded_seconds ),
      (* replan records minus the alerts field, which is the monitor's
         one intended (and observation-only) contribution *)
      List.map
        (fun (rec_ : Controller.replan_record) ->
          ( rec_.Controller.at,
            rec_.Controller.failed,
            rec_.Controller.observed,
            rec_.Controller.rho_before,
            rec_.Controller.rho_after,
            rec_.Controller.migration_cost ))
        r.Scenario.replans,
      trace_fingerprint trace,
      monitor )
  in
  let core0, reps0, fp0, _ = run None in
  let core1, reps1, fp1, m1 = run (Some 0.25) in
  let core2, reps2, fp2, m2 = run (Some 0.0) in
  Alcotest.(check bool) "interval 0.25 bit-identical" true
    (core1 = core0 && reps1 = reps0 && fp1 = fp0);
  Alcotest.(check bool) "interval 0 bit-identical" true
    (core2 = core0 && reps2 = reps0 && fp2 = fp0);
  Alcotest.(check bool) "monitored run scraped" true
    (match m1 with Some m -> Monitor.scrapes m > 0 | None -> false);
  Alcotest.(check bool) "interval 0 never scrapes" true
    (match m2 with Some m -> Monitor.scrapes m = 0 | None -> false);
  Alcotest.(check bool) "replans happened (the regression is non-trivial)"
    true (reps0 <> [])

(* The acceptance scenario: a 10-node dary:3 hierarchy where crashing a
   mid-level agent orphans its three servers.  The measured rate drops
   well below Eq. 16, model-drift fires, the controller replans around
   the dead agent citing the alert, throughput recovers toward the new
   prediction, and the alert resolves. *)
let drift_scenario () =
  let platform =
    Adept_platform.Generator.homogeneous ~bandwidth:1000.0 ~n:10 ~power:730.0 ()
  in
  let wapp = Adept_workload.Dgemm.(mflops (make 310)) in
  let strategy =
    match Adept.Planner.strategy_of_string "dary:3" with
    | Ok s -> s
    | Error e -> Alcotest.fail (Adept.Error.to_string e)
  in
  let plan =
    match
      Adept.Planner.run strategy params ~platform ~wapp
        ~demand:Adept_model.Demand.unbounded
    with
    | Ok p -> p
    | Error e -> Alcotest.fail (Adept.Error.to_string e)
  in
  let tree = plan.Adept.Planner.tree in
  let faults =
    Faults.make_exn ~service_timeout:2.0 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.5
  in
  let controller =
    match
      Controller.config ~strategy ~sample_period:0.5 ~window:2.0 ~threshold:0.75
        ~hold_time:1.0 ~cooldown:2.0 ~max_replans:3 Controller.Hysteresis
    with
    | Ok c -> c
    | Error e -> Alcotest.fail (Adept.Error.to_string e)
  in
  let monitor =
    match
      Monitor.create ~interval:0.25
        ~selectors:(Monitor.default_selectors tree)
        (Monitor.model_rules ~hold:0.5 ~params ~wapp tree)
    with
    | Ok m -> m
    | Error e -> Alcotest.fail (Adept.Error.to_string e)
  in
  let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 310) in
  let s =
    Scenario.make ~faults ~controller ~seed:42 ~params ~platform
      ~client:(Adept_workload.Client.closed_loop job) tree
  in
  (s, monitor)

let run_drift_scenario () =
  let s, monitor = drift_scenario () in
  let r = Scenario.run_fixed ~monitor s ~clients:16 ~warmup:0.5 ~duration:12.0 in
  (r, monitor)

let test_monitor_drift_cycle () =
  let r, monitor = run_drift_scenario () in
  let alerts = Monitor.alerts monitor in
  let edge_times edge =
    List.filter_map
      (fun (tr : Alert.transition) ->
        if tr.Alert.rule.Rule.name = "model-drift" && tr.Alert.edge = edge then
          Some tr.Alert.at
        else None)
      (Alert.transitions alerts)
  in
  let fired = edge_times Alert.To_firing in
  let resolved = edge_times Alert.To_resolved in
  Alcotest.(check int) "model-drift fires exactly once" 1 (List.length fired);
  let t_fire = List.hd fired in
  Alcotest.(check bool) "fires after the crash" true (t_fire > 1.5);
  Alcotest.(check int) "one replan" 1 (List.length r.Scenario.replans);
  let rep = List.hd r.Scenario.replans in
  Alcotest.(check bool) "the dead agent is written off" true
    (List.mem 1 rep.Controller.failed);
  Alcotest.(check bool) "replan enacted after the alert fired" true
    (rep.Controller.at > t_fire);
  Alcotest.(check (list string)) "replan cites the firing alert"
    [ "model-drift" ] rep.Controller.alerts;
  (* losing a mid-level agent orphans its whole subtree: the patched
     hierarchy trails the survivor bound, so the controller must fall
     back to a from-scratch replan and say why *)
  Alcotest.(check string) "fell back to a full replan" "full"
    (Adept.Planner.replan_mode_name rep.Controller.mode);
  Alcotest.(check (option string)) "with the fallback reason"
    (Some "rho-below-bound")
    (Adept.Planner.replan_fallback_reason rep.Controller.mode);
  Alcotest.(check int) "drift resolves exactly once" 1 (List.length resolved);
  Alcotest.(check bool) "resolves after the replan" true
    (List.hd resolved > rep.Controller.at);
  Alcotest.(check bool) "throughput recovered" true
    (r.Scenario.completed_total > 0 && Alert.firing_names alerts = [])

(* The alert timeline of that scenario, pinned byte-for-byte in
   test/golden/monitor_drift.jsonl.  A mismatch means the alert engine,
   the exporter or the simulation's accounting changed: if intentional,
   regenerate with
     MONITOR_GOLDEN_OUT=test/golden/monitor_drift.jsonl dune exec test/test_sim.exe
   and mention the break in the changelog. *)

let drift_timeline () =
  let _, monitor = run_drift_scenario () in
  Adept_obs.Export.alert_timeline_jsonl (Monitor.alerts monitor)

let read_golden name =
  let path = Filename.concat (Filename.dirname Sys.executable_name) name in
  In_channel.with_open_bin path In_channel.input_all

let test_monitor_golden_timeline () =
  let got = drift_timeline () in
  Alcotest.(check string) "byte-identical across runs" got (drift_timeline ());
  Alcotest.(check string) "matches golden"
    (read_golden "golden/monitor_drift.jsonl") got

(* The replan-mode breadcrumbs of the same run, pinned byte-for-byte in
   test/golden/replan_mode.jsonl: one line per enacted replan with how it
   was planned and, for a fallback, why the patch was rejected.  A
   mismatch means the incremental planner's acceptance decisions changed:
   if intentional, regenerate with
     REPLAN_GOLDEN_OUT=test/golden/replan_mode.jsonl dune exec test/test_sim.exe
   and mention the break in the changelog. *)

let replan_mode_jsonl (records : Controller.replan_record list) =
  let line (r : Controller.replan_record) =
    Printf.sprintf
      "{\"at\":%.6f,\"failed\":[%s],\"mode\":%S%s,\"rho_before\":%.6f,\"rho_after\":%.6f}\n"
      r.Controller.at
      (String.concat "," (List.map string_of_int r.Controller.failed))
      (Adept.Planner.replan_mode_name r.Controller.mode)
      (match Adept.Planner.replan_fallback_reason r.Controller.mode with
      | Some reason -> Printf.sprintf ",\"reason\":%S" reason
      | None -> "")
      r.Controller.rho_before r.Controller.rho_after
  in
  String.concat "" (List.map line records)

let drift_replan_modes () =
  let r, _ = run_drift_scenario () in
  replan_mode_jsonl r.Scenario.replans

let test_replan_mode_golden () =
  let got = drift_replan_modes () in
  Alcotest.(check string) "byte-identical across runs" got (drift_replan_modes ());
  Alcotest.(check string) "matches golden"
    (read_golden "golden/replan_mode.jsonl") got

(* ---------- Rollout ---------- *)

module Rollout = Adept_sim.Rollout
module SH = Adept_experiments.Self_heal

let rollout_config ?canary_fraction ?bake_window ?watch mode =
  match Rollout.config ?canary_fraction ?bake_window ?watch mode with
  | Ok c -> c
  | Error e -> Alcotest.fail (Adept.Error.to_string e)

let test_rollout_config_validation () =
  Alcotest.(check bool) "fraction 0 rejected" true
    (Result.is_error (Rollout.config ~canary_fraction:0.0 Rollout.Canary));
  Alcotest.(check bool) "fraction 1 rejected" true
    (Result.is_error (Rollout.config ~canary_fraction:1.0 Rollout.Canary));
  Alcotest.(check bool) "non-positive bake rejected" true
    (Result.is_error (Rollout.config ~bake_window:0.0 Rollout.Canary));
  Alcotest.(check bool) "off ignores bad parameters" true
    (Rollout.config ~canary_fraction:7.0 Rollout.Off = Ok Rollout.off);
  List.iter
    (fun m ->
      Alcotest.(check bool)
        ("mode name roundtrips: " ^ Rollout.mode_name m)
        true
        (Rollout.mode_of_string (Rollout.mode_name m) = Ok m))
    [ Rollout.Off; Rollout.Direct; Rollout.Canary ];
  (* deterministic membership, and a fraction that actually splits *)
  let cfg = rollout_config ~canary_fraction:0.25 Rollout.Canary in
  let members = List.init 64 (fun c -> Rollout.is_canary cfg ~client:c) in
  Alcotest.(check bool) "membership is deterministic" true
    (members = List.init 64 (fun c -> Rollout.is_canary cfg ~client:c));
  let n = List.length (List.filter Fun.id members) in
  Alcotest.(check bool) "some but not all clients are canary" true
    (n > 0 && n < 64);
  Alcotest.(check bool) "off mode has no canaries" true
    (List.for_all not (List.init 64 (fun c -> Rollout.is_canary Rollout.off ~client:c)))

(* The determinism regression for the two non-staged modes: [Off] must be
   bit-identical to a controller run with no rollout argument at all, and
   [Direct] bit-identical to [Off] — its decision trail is Tracer-only
   observation riding on the same event stream. *)
let test_rollout_direct_bit_identical () =
  let run rollout =
    let faults =
      Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
      |> Faults.crash ~node:1 ~at:1.0
    in
    let controller =
      match
        Controller.config ~sample_period:0.25 ~window:1.0 ~threshold:0.6
          ~hold_time:0.5 ~cooldown:1.0 ~min_gain:0.0 ~max_replans:4
          ~restart_latency:0.3 ~state_mbit:1.0 ?rollout Controller.Hysteresis
      with
      | Ok c -> c
      | Error e -> Alcotest.fail (Adept.Error.to_string e)
    in
    let s = controller_scenario ~controller ~faults ~seed:7 () in
    let trace = Trace.create () in
    let r = Scenario.run_fixed ~trace s ~clients:12 ~warmup:0.5 ~duration:6.0 in
    (r, trace_fingerprint trace)
  in
  let core ((r : Scenario.run_result), fp) =
    ( r.Scenario.throughput,
      r.Scenario.completed_total,
      r.Scenario.issued_total,
      r.Scenario.lost_total,
      r.Scenario.mean_response,
      r.Scenario.migration_lost,
      r.Scenario.degraded_seconds,
      List.map
        (fun (rec_ : Controller.replan_record) ->
          ( rec_.Controller.at,
            rec_.Controller.failed,
            rec_.Controller.observed,
            rec_.Controller.rho_before,
            rec_.Controller.rho_after,
            rec_.Controller.migration_cost ))
        r.Scenario.replans,
      fp )
  in
  let base = run None in
  let off = run (Some Rollout.off) in
  let direct = run (Some (rollout_config Rollout.Direct)) in
  Alcotest.(check bool) "replans happened (the regression is non-trivial)"
    true ((fst base).Scenario.replans <> []);
  Alcotest.(check bool) "explicit Off bit-identical to default" true
    (core off = core base);
  Alcotest.(check bool) "Direct bit-identical to Off" true
    (core direct = core base);
  Alcotest.(check bool) "Off records carry no rollout" true
    (List.for_all
       (fun (rec_ : Controller.replan_record) -> rec_.Controller.rollout = None)
       (fst off).Scenario.replans);
  List.iter
    (fun (rec_ : Controller.replan_record) ->
      match rec_.Controller.rollout with
      | Some ro ->
          Alcotest.(check string) "Direct outcome" "direct"
            (Rollout.outcome_name ro.Rollout.outcome);
          Alcotest.(check (list string)) "Direct trail is one swap"
            [ "direct-enacted" ]
            (List.map
               (fun (e : Rollout.event) -> Rollout.step_name e.Rollout.step)
               ro.Rollout.trail)
      | None -> Alcotest.fail "Direct record carries no rollout trail")
    (fst direct).Scenario.replans

(* Satellite regression: a node that died, was written out by a replan and
   then recovered must be threaded back into the next replan's candidate
   platform, while off-tree nodes that are still dead stay excluded. *)
let test_rollout_readmission () =
  let faults =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.0 ~recover_at:6.0
    |> Faults.crash ~node:3 ~at:1.0
    |> Faults.crash ~node:2 ~at:7.0
  in
  let s =
    controller_scenario
      ~controller:(controller_config ~min_gain:0.0 ())
      ~faults ~seed:7 ()
  in
  let r = Scenario.run_fixed s ~clients:12 ~warmup:0.5 ~duration:10.0 in
  Alcotest.(check bool) "the write-off and the re-admission both happened"
    true
    (List.length r.Scenario.replans >= 2);
  let first = List.hd r.Scenario.replans in
  let last = List.nth r.Scenario.replans (List.length r.Scenario.replans - 1) in
  Alcotest.(check bool) "first replan writes off both dead servers" true
    (List.mem 1 first.Controller.failed && List.mem 3 first.Controller.failed);
  Alcotest.(check bool) "second replan excludes the new corpse" true
    (List.mem 2 last.Controller.failed);
  Alcotest.(check bool) "still-dead off-tree node stays excluded" true
    (List.mem 3 last.Controller.failed);
  Alcotest.(check bool) "recovered node is no longer written off" true
    (not (List.mem 1 last.Controller.failed));
  Alcotest.(check bool) "recovered node serves in the final hierarchy" true
    (Tree.mem r.Scenario.final_tree 1);
  Alcotest.(check bool) "corpses are not in the final hierarchy" true
    (not (Tree.mem r.Scenario.final_tree 2)
    && not (Tree.mem r.Scenario.final_tree 3))

(* Incremental twin of [test_rollout_readmission]: the controller now
   threads its write-off ledger into the patcher as [~recovered], so the
   same crash/recover/crash schedule must re-admit the recovered node
   WITHOUT the full-replan fallback doing it implicitly — the final
   replan stays [Incremental] and still serves the recovered node. *)
let test_incremental_readmission () =
  let faults =
    Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
    |> Faults.crash ~node:1 ~at:1.0 ~recover_at:6.0
    |> Faults.crash ~node:3 ~at:1.0
    |> Faults.crash ~node:2 ~at:7.0
  in
  let s =
    controller_scenario
      ~controller:(controller_config ~min_gain:0.0 ())
      ~faults ~seed:7 ()
  in
  let r = Scenario.run_fixed s ~clients:12 ~warmup:0.5 ~duration:10.0 in
  Alcotest.(check bool) "the write-off and the re-admission both happened"
    true
    (List.length r.Scenario.replans >= 2);
  let last = List.nth r.Scenario.replans (List.length r.Scenario.replans - 1) in
  Alcotest.(check string)
    "re-admission went through the patcher, not the full fallback"
    "incremental"
    (Adept.Planner.replan_mode_name last.Controller.mode);
  Alcotest.(check bool) "recovered node serves in the final hierarchy" true
    (Tree.mem r.Scenario.final_tree 1);
  Alcotest.(check bool) "corpses stay out" true
    (not (Tree.mem r.Scenario.final_tree 2)
    && not (Tree.mem r.Scenario.final_tree 3))

(* The canonical demo reaches both verdicts: nothing further goes wrong
   and the canary promotes; a node dies mid-bake and the canary rolls
   back, citing the alert that condemned it. *)
let test_rollout_demo_outcomes () =
  let run flavor = SH.run_rollout ~flavor () in
  let outcomes (r : Scenario.run_result) =
    List.filter_map
      (fun (rec_ : Controller.replan_record) ->
        Option.map
          (fun (ro : Rollout.record) -> Rollout.outcome_name ro.Rollout.outcome)
          rec_.Controller.rollout)
      r.Scenario.replans
  in
  let healthy, _, tree = run SH.Healthy in
  Alcotest.(check (list string)) "healthy promotes" [ "promoted" ]
    (outcomes healthy);
  Alcotest.(check bool) "promotion swapped the serving hierarchy" true
    (not (Tree.equal healthy.Scenario.final_tree tree));
  Alcotest.(check bool) "the dead agent is gone from the promoted tree" true
    (not (Tree.mem healthy.Scenario.final_tree 1));
  let drift, _, _ = run SH.Drift in
  Alcotest.(check (list string)) "drift rolls back" [ "rolled-back" ]
    (outcomes drift);
  let ro =
    match
      List.filter_map
        (fun (rec_ : Controller.replan_record) -> rec_.Controller.rollout)
        drift.Scenario.replans
    with
    | [ ro ] -> ro
    | _ -> Alcotest.fail "expected exactly one finished rollout"
  in
  let cited =
    List.concat_map
      (fun (e : Rollout.event) ->
        if e.Rollout.step = Rollout.Rollback_started then e.Rollout.alerts
        else [])
      ro.Rollout.trail
  in
  Alcotest.(check (list string)) "rollback cites the condemning alert"
    [ "fleet-size" ] cited

(* The merged alert + rollout-decision timeline of the drift flavor,
   pinned byte-for-byte in test/golden/rollout_timeline.jsonl.  A
   mismatch means the rollout state machine, the alert engine or the
   simulation's accounting changed: if intentional, regenerate with
     ROLLOUT_GOLDEN_OUT=test/golden/rollout_timeline.jsonl dune exec test/test_sim.exe
   and mention the break in the changelog. *)

let rollout_timeline () =
  let r, monitor, _ = SH.run_rollout ~flavor:SH.Drift () in
  let trail =
    List.concat_map
      (fun (rec_ : Controller.replan_record) ->
        match rec_.Controller.rollout with
        | Some ro -> ro.Rollout.trail
        | None -> [])
      r.Scenario.replans
  in
  Rollout.timeline_jsonl ~alerts:(Monitor.alerts monitor) trail

let test_rollout_golden_timeline () =
  let got = rollout_timeline () in
  Alcotest.(check string) "byte-identical across runs" got (rollout_timeline ());
  Alcotest.(check string) "matches golden"
    (read_golden "golden/rollout_timeline.jsonl") got

(* ---------- properties ---------- *)

let prop_controller_min_gain =
  QCheck.Test.make ~count:12
    ~name:"no enacted replan has predicted gain below the configured minimum"
    QCheck.(triple (int_range 0 10_000) (int_range 0 40) bool)
    (fun (seed, gain_pct, eager) ->
      let min_gain = float_of_int gain_pct /. 100.0 in
      let faults =
        Faults.make_exn ~service_timeout:0.5 ~patience:0.2 ()
        |> Faults.crash ~node:1 ~at:1.0
        |> Faults.seeded_crashes
             ~rng:(Adept_util.Rng.create seed)
             ~nodes:[ 2; 3 ] ~rate:0.4 ~mttr:0.6 ~horizon:5.0
      in
      let controller =
        controller_config
          ~policy:(if eager then Controller.Eager else Controller.Hysteresis)
          ~min_gain ()
      in
      let s = controller_scenario ~controller ~faults ~seed () in
      let r = Scenario.run_fixed s ~clients:8 ~warmup:0.5 ~duration:4.5 in
      List.for_all
        (fun (rec_ : Controller.replan_record) ->
          rec_.Controller.rho_after
          > (rec_.Controller.observed *. (1.0 +. min_gain)) -. 1e-9)
        r.Scenario.replans)

(* Rollback must restore the prior generation bit-identically: the serving
   tree is physically the same value (never re-planned, re-deployed or
   resurrected), every finished rollout in the drift flavor is a rollback
   (the fleet-size alert never clears), the record prices forward plus
   reverse migration, and successive rollouts respect the cooldown — a
   rollback may not reset the clocks and thrash. *)
let prop_rollout_rollback_restores =
  QCheck.Test.make ~count:6
    ~name:"a rolled-back canary restores the prior generation exactly"
    QCheck.(pair (int_range 5 60) (int_range 0 9))
    (fun (fraction_pct, bake_step) ->
      let canary_fraction = float_of_int fraction_pct /. 100.0 in
      let bake_window = 1.5 +. (0.2 *. float_of_int bake_step) in
      let r, _monitor, tree =
        SH.run_rollout ~canary_fraction ~bake_window ~flavor:SH.Drift ()
      in
      let rollouts =
        List.filter_map
          (fun (rec_ : Controller.replan_record) ->
            Option.map (fun ro -> (rec_, ro)) rec_.Controller.rollout)
          r.Scenario.replans
      in
      let step_at (ro : Rollout.record) step =
        List.find_map
          (fun (e : Rollout.event) ->
            if e.Rollout.step = step then Some e.Rollout.at else None)
          ro.Rollout.trail
      in
      let well_priced ((rec_ : Controller.replan_record), ro) =
        ro.Rollout.outcome = Rollout.Rolled_back
        &&
        match
          ( step_at ro Rollout.Canary_started,
            step_at ro Rollout.Canary_enacted,
            step_at ro Rollout.Rollback_started,
            step_at ro Rollout.Rollback_finished )
        with
        | Some t0, Some t1, Some t2, Some t3 ->
            t0 <= t1 && t1 <= t2 && t2 <= t3
            && Float.abs
                 (rec_.Controller.migration_cost -. (t1 -. t0 +. (t3 -. t2)))
               < 1e-6
            && Float.abs (rec_.Controller.at -. t3) < 1e-9
        | _ -> false
      in
      let rec cooldown_spaced = function
        | ((rec_ : Controller.replan_record), _) :: (((_, ro2) :: _) as rest) ->
            (match step_at ro2 Rollout.Canary_started with
            | Some s2 -> s2 >= rec_.Controller.at +. 2.0 -. 1e-6 && cooldown_spaced rest
            | None -> false)
        | _ -> true
      in
      rollouts <> []
      && r.Scenario.final_tree == tree
      && List.for_all well_priced rollouts
      && cooldown_spaced rollouts)

let prop_sim_conservation =
  QCheck.Test.make ~count:25
    ~name:"conservation laws hold on random deployments"
    QCheck.(pair (int_range 0 10_000) (int_range 3 14))
    (fun (seed, n) ->
      let rng = Adept_util.Rng.create seed in
      let platform =
        Adept_platform.Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n
          ~power_min:100.0 ~power_max:1500.0 ()
      in
      let tree =
        match Adept.Baselines.random ~rng (Adept_platform.Platform.nodes platform) with
        | Ok t -> t
        | Error _ -> QCheck.assume_fail ()
      in
      let job = Adept_workload.Job.of_dgemm (Adept_workload.Dgemm.make 200) in
      let s =
        Scenario.make ~seed ~params ~platform
          ~client:(Adept_workload.Client.closed_loop job) tree
      in
      let r = Scenario.run_fixed s ~clients:6 ~warmup:0.5 ~duration:1.0 in
      let per_server_total =
        List.fold_left (fun acc (_, c) -> acc + c) 0 r.Scenario.per_server
      in
      let server_ids =
        List.map Adept_platform.Node.id (Adept_hierarchy.Tree.servers tree)
      in
      r.Scenario.completed_total <= r.Scenario.issued_total
      && per_server_total = r.Scenario.completed_total
      && List.for_all (fun (id, _) -> List.mem id server_ids) r.Scenario.per_server
      && r.Scenario.throughput >= 0.0)

let prop_sim_busy_bounded =
  QCheck.Test.make ~count:25 ~name:"no resource is busy longer than the run"
    QCheck.(int_range 0 10_000)
    (fun seed ->
      let rng = Adept_util.Rng.create seed in
      let platform =
        Adept_platform.Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n:8
          ~power_min:200.0 ~power_max:1000.0 ()
      in
      let tree =
        match Adept.Baselines.star (Adept_platform.Platform.nodes platform) with
        | Ok t -> t
        | Error _ -> QCheck.assume_fail ()
      in
      let engine = Engine.create () in
      let m = Middleware.deploy ~engine ~params ~platform tree in
      let horizon = 2.0 in
      let rec loop () =
        if Engine.now engine < horizon then
          Middleware.submit m ~wapp:16.0
            ~on_scheduled:(fun ~server ->
              Middleware.request_service m ~server ~wapp:16.0 ~on_done:loop ())
            ()
      in
      for i = 0 to 4 do
        Engine.schedule_at engine ~time:(0.05 *. float_of_int i) loop
      done;
      ignore (Engine.run ~until:horizon engine);
      (* bookings may extend past the horizon by at most the backlog each
         port accepted; busy time is bounded by its own free_at *)
      List.for_all
        (fun id ->
          let r = Middleware.resource m id in
          Resource.busy_seconds r <= Resource.free_at r +. 1e-9)
        (Middleware.root m :: Middleware.server_ids m))

let () =
  (* regenerate the pinned alert timeline:
       MONITOR_GOLDEN_OUT=test/golden/monitor_drift.jsonl dune exec test/test_sim.exe *)
  (match Sys.getenv_opt "MONITOR_GOLDEN_OUT" with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (drift_timeline ()));
      Printf.printf "wrote %s\n%!" path;
      exit 0
  | None -> ());
  (* regenerate the pinned replan-mode breadcrumbs:
       REPLAN_GOLDEN_OUT=test/golden/replan_mode.jsonl dune exec test/test_sim.exe *)
  (match Sys.getenv_opt "REPLAN_GOLDEN_OUT" with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (drift_replan_modes ()));
      Printf.printf "wrote %s\n%!" path;
      exit 0
  | None -> ());
  (* regenerate the pinned rollout timeline:
       ROLLOUT_GOLDEN_OUT=test/golden/rollout_timeline.jsonl dune exec test/test_sim.exe *)
  (match Sys.getenv_opt "ROLLOUT_GOLDEN_OUT" with
  | Some path ->
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc (rollout_timeline ()));
      Printf.printf "wrote %s\n%!" path;
      exit 0
  | None -> ());
  Alcotest.run "sim"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick test_queue_ordering;
          Alcotest.test_case "fifo ties" `Quick test_queue_fifo_ties;
          Alcotest.test_case "size/empty" `Quick test_queue_size_empty;
          Alcotest.test_case "nan" `Quick test_queue_nan;
          Alcotest.test_case "stress vs sort" `Quick test_queue_stress_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "runs in order" `Quick test_engine_runs_in_order;
          Alcotest.test_case "horizon" `Quick test_engine_horizon;
          Alcotest.test_case "event limit" `Quick test_engine_event_limit;
          Alcotest.test_case "past schedule rejected" `Quick test_engine_past_schedule;
          Alcotest.test_case "nested scheduling" `Quick test_engine_nested_scheduling;
          Alcotest.test_case "exhausted advances" `Quick
            test_engine_exhausted_advances_to_horizon;
          Alcotest.test_case "schedule_every" `Quick test_engine_schedule_every;
        ] );
      ( "monitor",
        [
          Alcotest.test_case "observation only" `Slow
            test_monitor_observation_only;
          Alcotest.test_case "drift fire/replan/resolve" `Slow
            test_monitor_drift_cycle;
          Alcotest.test_case "golden timeline" `Slow
            test_monitor_golden_timeline;
          Alcotest.test_case "golden replan modes" `Slow
            test_replan_mode_golden;
        ] );
      ( "resource",
        [
          Alcotest.test_case "serial booking" `Quick test_resource_serial_booking;
          Alcotest.test_case "backlog/busy" `Quick test_resource_backlog_busy;
          Alcotest.test_case "charge" `Quick test_resource_charge;
          Alcotest.test_case "monotonic now" `Quick test_resource_monotonic_now;
          Alcotest.test_case "utilization" `Quick test_resource_utilization;
          Alcotest.test_case "validation" `Quick test_resource_validation;
        ] );
      ( "network",
        [
          Alcotest.test_case "port to port" `Quick test_network_port_to_port;
          Alcotest.test_case "latency" `Quick test_network_latency;
          Alcotest.test_case "lane semantics" `Quick
            test_network_lane_charges_but_does_not_delay;
          Alcotest.test_case "send contention" `Quick test_network_queueing_contention;
          Alcotest.test_case "validation" `Quick test_network_validation;
        ] );
      ( "trace",
        [
          Alcotest.test_case "records" `Quick test_trace_records;
          Alcotest.test_case "disabled" `Quick test_trace_disabled;
          Alcotest.test_case "samples" `Quick test_trace_samples;
        ] );
      ( "middleware",
        [
          Alcotest.test_case "single request timing" `Quick
            test_middleware_single_request_timing;
          Alcotest.test_case "selects stronger server" `Quick
            test_middleware_selects_stronger_server;
          Alcotest.test_case "round robin" `Quick test_middleware_round_robin;
          Alcotest.test_case "two-level flow" `Quick test_middleware_two_level_flow;
          Alcotest.test_case "database selection" `Quick
            test_middleware_database_selection;
          Alcotest.test_case "database requires period" `Quick
            test_middleware_database_requires_period;
          Alcotest.test_case "deploy validates" `Quick test_middleware_deploy_validates;
          Alcotest.test_case "service to agent rejected" `Quick
            test_middleware_service_to_agent_rejected;
          Alcotest.test_case "ids" `Quick test_middleware_ids;
        ] );
      ( "run_stats",
        [
          Alcotest.test_case "accounting" `Quick test_run_stats;
          Alcotest.test_case "empty window" `Quick test_run_stats_empty_window;
        ] );
      ( "scenario",
        [
          Alcotest.test_case "matches model" `Quick test_scenario_matches_model;
          Alcotest.test_case "deterministic" `Quick test_scenario_deterministic;
          Alcotest.test_case "conservation" `Quick test_scenario_conservation;
          Alcotest.test_case "series monotone" `Quick
            test_scenario_series_monotone_until_saturation;
          Alcotest.test_case "saturation probe" `Quick test_scenario_saturation;
          Alcotest.test_case "validation" `Quick test_scenario_validation;
          Alcotest.test_case "think time" `Quick test_scenario_think_time_lowers_load;
          Alcotest.test_case "open loop tracks rate" `Quick
            test_scenario_open_loop_tracks_rate;
          Alcotest.test_case "open loop overload" `Quick
            test_scenario_open_loop_overload_backlogs;
          Alcotest.test_case "open loop deterministic" `Quick
            test_scenario_open_loop_deterministic;
          Alcotest.test_case "percentiles" `Quick test_scenario_percentiles_ordered;
        ] );
      ( "faults",
        [
          Alcotest.test_case "none is inert" `Quick test_faults_none_inert;
          Alcotest.test_case "validation" `Quick test_faults_validation;
          Alcotest.test_case "bandwidth factor" `Quick test_faults_bandwidth_factor;
          Alcotest.test_case "seeded crashes deterministic" `Quick
            test_faults_seeded_crashes_deterministic;
          Alcotest.test_case "empty schedule bit-identical" `Quick
            test_scenario_empty_faults_bit_identical;
          Alcotest.test_case "rtrace rate 0 bit-identical" `Quick
            test_scenario_rtrace_rate_zero_bit_identical;
          Alcotest.test_case "fault run deterministic" `Quick
            test_scenario_fault_run_deterministic;
          Alcotest.test_case "crash metrics non-zero" `Quick
            test_scenario_crash_metrics_nonzero;
          Alcotest.test_case "message loss metrics" `Quick
            test_scenario_message_loss_metrics;
          Alcotest.test_case "initial dead not resurrected" `Quick
            test_middleware_initial_dead_not_resurrected;
        ] );
      ( "controller",
        [
          Alcotest.test_case "threshold 0 bit-identical" `Quick
            test_controller_threshold_zero_bit_identical;
          Alcotest.test_case "enacts on permanent crash" `Quick
            test_controller_enacts_on_permanent_crash;
        ] );
      ( "rollout",
        [
          Alcotest.test_case "config validation" `Quick
            test_rollout_config_validation;
          Alcotest.test_case "direct bit-identical" `Slow
            test_rollout_direct_bit_identical;
          Alcotest.test_case "node re-admission" `Slow test_rollout_readmission;
          Alcotest.test_case "incremental node re-admission" `Slow
            test_incremental_readmission;
          Alcotest.test_case "demo outcomes" `Slow test_rollout_demo_outcomes;
          Alcotest.test_case "golden timeline" `Slow
            test_rollout_golden_timeline;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_sim_conservation;
            prop_sim_busy_bounded;
            prop_controller_min_gain;
            prop_rollout_rollback_restores;
          ] );
    ]
