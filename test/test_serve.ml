(* Tests for the planning service: JSON and protocol codec fixpoints,
   wire framing, the domain pool, the plan cache, sharded-planning
   equivalence, and a live server driven over a Unix socket — including
   the golden session transcript and the robustness cases (malformed
   frame, oversized prefix, unknown method, mid-request disconnect). *)

module Json = Adept_serve.Json
module Wire = Adept_serve.Wire
module Proto = Adept_serve.Protocol
module Pool = Adept_serve.Domain_pool
module Shard = Adept_serve.Shard
module Cache = Adept_serve.Cache
module Server = Adept_serve.Server
module Client = Adept_serve.Client
module Planner = Adept.Planner
module Demand = Adept_model.Demand
module Generator = Adept_platform.Generator
module Tree = Adept_hierarchy.Tree
module Rng = Adept_util.Rng

let params = Adept_model.Params.diet_lyon
let dgemm n = Adept_workload.Dgemm.(mflops (make n))

(* ---------- JSON ---------- *)

let roundtrip j =
  match Json.of_string (Json.to_string j) with
  | Ok j' -> j'
  | Error e -> Alcotest.fail ("reparse failed: " ^ e)

let test_json_fixpoint () =
  (* values whose printed form reparses to the same constructor *)
  let cases =
    [
      Json.Null;
      Json.Bool true;
      Json.Bool false;
      Json.Int 0;
      Json.Int (-42);
      Json.Int max_int;
      Json.Float 0.1;
      Json.Float (1.0 /. 3.0);
      Json.Float 1e-9;
      Json.Float 5e-324;
      Json.Float 1.7976931348623157e308;
      Json.String "";
      Json.String "plain";
      Json.String "quotes \" backslash \\ newline \n tab \t";
      Json.List [];
      Json.List [ Json.Int 1; Json.String "two"; Json.Null ];
      Json.Obj [];
      Json.Obj
        [
          ("a", Json.Int 1);
          ("nested", Json.Obj [ ("l", Json.List [ Json.Bool false ]) ]);
        ];
    ]
  in
  List.iter
    (fun j ->
      Alcotest.(check bool)
        ("fixpoint: " ^ Json.to_string j)
        true
        (roundtrip j = j))
    cases

let test_json_whole_floats () =
  (* %.17g prints whole floats without a point; readers must accept the
     Int that comes back *)
  Alcotest.(check string) "310.0 prints as int" "310" (Json.to_string (Json.Float 310.0));
  Alcotest.(check (option (float 0.0))) "Int reads as float" (Some 310.0)
    (Json.to_float (roundtrip (Json.Float 310.0)))

let test_json_rejects () =
  let bad s =
    match Json.of_string s with
    | Ok _ -> Alcotest.fail ("accepted: " ^ s)
    | Error _ -> ()
  in
  bad "not json";
  bad "{} trailing";
  bad "[1,2";
  bad "{\"a\":}";
  bad "\"unterminated";
  bad ""

let test_json_escapes () =
  (match Json.of_string "\"a\\u0041b\"" with
  | Ok (Json.String s) -> Alcotest.(check string) "\\u escape" "aAb" s
  | _ -> Alcotest.fail "\\u0041 did not parse");
  (* control chars escape on the way out and survive the roundtrip *)
  Alcotest.(check bool) "control char roundtrip" true
    (roundtrip (Json.String "\x01\x02") = Json.String "\x01\x02")

(* ---------- protocol codecs ---------- *)

let syn8 =
  Proto.Synthetic
    { nodes = 8; power = 730.0; bandwidth = 1000.0; heterogeneous = false; seed = 42 }

let plan_syn8 =
  Proto.Plan
    { spec = syn8; dgemm = 310; demand = None; strategy = "heuristic"; use_cache = true }

let sample_envelopes =
  [
    { Proto.id = 1; trace = None; request = plan_syn8 };
    {
      Proto.id = 2;
      trace = None;
      request =
        Proto.Plan
          {
            spec =
              Proto.Synthetic
                { nodes = 3; power = 512.5; bandwidth = 100.0; heterogeneous = true; seed = 7 };
            dgemm = 1000;
            demand = Some 200.5;
            strategy = "star";
            use_cache = false;
          };
    };
    {
      Proto.id = 3;
      trace = None;
      request =
        Proto.Plan
          {
            spec = Proto.Catalog "node a 730.0\nnode \"b\" 100.0\n";
            dgemm = 310;
            demand = Some 0.1;
            strategy = "heuristic";
            use_cache = true;
          };
    };
    {
      Proto.id = 4;
      trace = None;
      request =
        Proto.Replan
          {
            r_spec = syn8;
            r_dgemm = 310;
            r_demand = None;
            r_strategy = "heuristic";
            r_failed = [ 1; 3; 5 ];
          };
    };
    {
      Proto.id = 5;
      trace = None;
      request =
        Proto.Observe
          {
            o_spec = syn8;
            o_dgemm = 310;
            o_demand = Some 50.25;
            o_strategy = "heuristic";
            o_seed = 9;
            o_clients = 40;
            o_warmup = 0.5;
            o_duration = 1.5;
          };
    };
    { Proto.id = 6; trace = None; request = Proto.Stats };
    (* trace context rides the envelope, orthogonal to the method *)
    { Proto.id = 7; trace = Some 1_000_007; request = plan_syn8 };
    { Proto.id = 8; trace = Some 0; request = Proto.Stats };
    { Proto.id = 9; trace = Some max_int; request = Proto.Trace_dump };
    { Proto.id = 10; trace = None; request = Proto.Trace_dump };
  ]

let test_request_fixpoint () =
  List.iter
    (fun e ->
      match Proto.decode_request (Proto.encode_request e) with
      | Proto.Request e' ->
          Alcotest.(check bool)
            (Printf.sprintf "request %d survives the codec" e.Proto.id)
            true (e' = e)
      | Proto.Bad (_, kind) ->
          Alcotest.fail (snd (Proto.error_kind_fields kind)))
    sample_envelopes

let sample_stats =
  {
    Proto.plan_requests = 3;
    replan_requests = 1;
    observe_requests = 1;
    stats_requests = 1;
    errors = 2;
    cache_hits = 1;
    cache_misses = 2;
    cache_evictions = 0;
    cache_invalidations = 1;
    coalesced = 4;
    workers = 1;
    shards = 2;
    live = None;
  }

let sample_live =
  {
    Proto.uptime_seconds = 12.5;
    latency_p50 = 0.0015;
    latency_p99 = 0.25;
    cache_hit_ratio = 0.75;
    gc_pause_p99 = 0.00012;
    domain_busy = [ 0.5; 0.25 ];
    traces_sampled = 17;
    firing_alerts = [ ("serve_latency_p99_high", "warning") ];
    connections = [];
  }

let sample_replies =
  [
    {
      Proto.reply_id = 1;
      response =
        Proto.Plan_ok
          { text = "tree\nwith \"quotes\"\n"; rho = 1234.5678901234567; nodes_used = 8; cached = false };
    };
    {
      Proto.reply_id = 2;
      response = Proto.Plan_ok { text = ""; rho = 0.1; nodes_used = 0; cached = true };
    };
    { Proto.reply_id = 3; response = Proto.Replan_ok { text = "t"; rho_after = 88.25 } };
    { Proto.reply_id = 4; response = Proto.Observe_ok { text = "o"; throughput = 310.0 } };
    { Proto.reply_id = 5; response = Proto.Stats_ok sample_stats };
    { Proto.reply_id = 0; response = Proto.Error Proto.Parse_error };
    { Proto.reply_id = 6; response = Proto.Error Proto.Invalid_request };
    { Proto.reply_id = 7; response = Proto.Error (Proto.Unknown_method "frobnicate") };
    { Proto.reply_id = 8; response = Proto.Error (Proto.Invalid_params "missing field \"failed\"") };
    { Proto.reply_id = 9; response = Proto.Error (Proto.Plan_failed "no feasible hierarchy") };
    {
      Proto.reply_id = 10;
      response = Proto.Trace_ok { chrome = "{\"traceEvents\":[]}" };
    };
    {
      Proto.reply_id = 11;
      response = Proto.Stats_ok { sample_stats with Proto.live = Some sample_live };
    };
    {
      Proto.reply_id = 12;
      response =
        Proto.Stats_ok
          {
            sample_stats with
            Proto.live = Some { sample_live with Proto.domain_busy = []; firing_alerts = [] };
          };
    };
    {
      Proto.reply_id = 13;
      response = Proto.Otlp_ok { otlp = "{\"resourceSpans\":[]}\n" };
    };
    {
      Proto.reply_id = 14;
      response =
        Proto.Stats_ok
          {
            sample_stats with
            Proto.live =
              Some
                {
                  sample_live with
                  Proto.connections =
                    [
                      { Proto.conn_id = 1; conn_requests = 3; conn_spans = 21;
                        conn_seconds = 0.125 };
                      { Proto.conn_id = 4; conn_requests = 1; conn_spans = 6;
                        conn_seconds = 0.5 };
                    ];
                };
          };
    };
  ]

let test_reply_fixpoint () =
  List.iter
    (fun r ->
      match Proto.decode_reply (Proto.encode_reply r) with
      | Ok r' ->
          Alcotest.(check bool)
            (Printf.sprintf "reply %d survives the codec" r.Proto.reply_id)
            true (r' = r)
      | Error e -> Alcotest.fail e)
    sample_replies

let test_decode_bad_requests () =
  (match Proto.decode_request "not json" with
  | Proto.Bad (None, Proto.Parse_error) -> ()
  | _ -> Alcotest.fail "garbage should be Parse_error without an id");
  (match Proto.decode_request "[1,2,3]" with
  | Proto.Bad (None, Proto.Invalid_request) -> ()
  | _ -> Alcotest.fail "non-envelope JSON should be Invalid_request");
  (match Proto.decode_request "{\"method\":\"plan\",\"params\":{}}" with
  | Proto.Bad (None, Proto.Invalid_request) -> ()
  | _ -> Alcotest.fail "missing id should be Invalid_request");
  (match Proto.decode_request "{\"id\":7,\"method\":\"frobnicate\",\"params\":{}}" with
  | Proto.Bad (Some 7, Proto.Unknown_method "frobnicate") -> ()
  | _ -> Alcotest.fail "unknown method should echo the id");
  (match Proto.decode_request "{\"id\":8,\"method\":\"plan\",\"params\":{\"dgemm\":\"x\"}}" with
  | Proto.Bad (Some 8, Proto.Invalid_params _) -> ()
  | _ -> Alcotest.fail "mistyped field should be Invalid_params");
  match Proto.decode_request "{\"id\":9,\"method\":\"replan\",\"params\":{\"platform\":{\"synthetic\":{}}}}" with
  | Proto.Bad (Some 9, Proto.Invalid_params _) -> ()
  | _ -> Alcotest.fail "replan without failed list should be Invalid_params"

let test_decode_defaults_match_cli () =
  (* an empty params object decodes to exactly the CLI's defaults *)
  match Proto.decode_request "{\"id\":1,\"method\":\"plan\",\"params\":{\"platform\":{\"synthetic\":{}}}}" with
  | Proto.Request { request = Proto.Plan p; _ } ->
      Alcotest.(check bool) "defaults" true
        (p.Proto.spec
         = Proto.Synthetic
             { nodes = 50; power = 730.0; bandwidth = 1000.0; heterogeneous = false; seed = 42 }
        && p.Proto.dgemm = 310 && p.Proto.demand = None
        && p.Proto.strategy = "heuristic" && p.Proto.use_cache)
  | _ -> Alcotest.fail "defaulted plan request did not decode"

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub hay i nn = needle || go (i + 1)) in
  go 0

let test_trace_context_compat () =
  (* old client: no "trace" member at all ⇒ decodes, trace = None *)
  (match Proto.decode_request "{\"id\":1,\"method\":\"stats\",\"params\":{}}" with
  | Proto.Request { trace = None; request = Proto.Stats; _ } -> ()
  | _ -> Alcotest.fail "traceless request must decode with trace = None");
  (* a malformed trace member never rejects the request — the span is
     suppressed, the request is served *)
  (match
     Proto.decode_request "{\"id\":2,\"trace\":\"xyz\",\"method\":\"stats\",\"params\":{}}"
   with
  | Proto.Request { trace = None; request = Proto.Stats; _ } -> ()
  | _ -> Alcotest.fail "malformed trace must decode with trace = None");
  (match
     Proto.decode_request "{\"id\":3,\"trace\":null,\"method\":\"stats\",\"params\":{}}"
   with
  | Proto.Request { trace = None; request = Proto.Stats; _ } -> ()
  | _ -> Alcotest.fail "null trace must decode with trace = None");
  (* encoding trace = None emits no member an old server could see *)
  let untraced =
    Proto.encode_request { Proto.id = 4; trace = None; request = Proto.Stats }
  in
  Alcotest.(check bool) "no trace member when None" false
    (contains untraced "trace");
  let traced =
    Proto.encode_request { Proto.id = 4; trace = Some 9; request = Proto.Stats }
  in
  Alcotest.(check bool) "trace member when Some" true
    (contains traced "\"trace\":9")

let test_stats_live_absent_when_none () =
  (* live = None encodes byte-identically to the pre-observability
     stats object: no "live" member, nothing for an old client to
     choke on *)
  let encoded =
    Proto.encode_reply
      { Proto.reply_id = 1; response = Proto.Stats_ok sample_stats }
  in
  Alcotest.(check bool) "no live member" false (contains encoded "live")

(* Property: any envelope — traced or not, any method, any finite
   numeric params — survives encode/decode bit-exactly. *)
let prop_envelope_fixpoint =
  let open QCheck in
  let gen =
    Gen.(
      let spec =
        oneof
          [
            map2
              (fun n seed ->
                Proto.Synthetic
                  {
                    nodes = n;
                    power = float_of_int (100 + (seed mod 900)) +. 0.5;
                    bandwidth = 1000.0;
                    heterogeneous = n mod 2 = 0;
                    seed;
                  })
              (int_range 2 200) (int_range 0 10_000);
            map
              (fun s -> Proto.Catalog s)
              (string_size ~gen:(char_range 'a' 'z') (int_range 0 24));
          ]
      in
      let demand = opt (map (fun i -> float_of_int i /. 7.0) (int_range 1 10_000)) in
      let strategy = oneofl [ "heuristic"; "star"; "greedy" ] in
      let request =
        frequency
          [
            ( 4,
              let* spec = spec and* dgemm = int_range 1 5_000
              and* demand = demand and* strategy = strategy
              and* use_cache = bool in
              return (Proto.Plan { spec; dgemm; demand; strategy; use_cache })
            );
            ( 2,
              let* r_spec = spec and* r_dgemm = int_range 1 5_000
              and* r_demand = demand and* r_strategy = strategy
              and* r_failed = list_size (int_range 0 6) (int_range 0 199) in
              return
                (Proto.Replan { r_spec; r_dgemm; r_demand; r_strategy; r_failed })
            );
            ( 2,
              let* o_spec = spec and* o_dgemm = int_range 1 5_000
              and* o_demand = demand and* o_strategy = strategy
              and* o_seed = int_range 0 1_000 and* o_clients = int_range 1 100
              and* o_warmup = map (fun i -> float_of_int i /. 4.0) (int_range 0 8)
              and* o_duration = map (fun i -> float_of_int i /. 4.0) (int_range 1 8) in
              return
                (Proto.Observe
                   {
                     o_spec; o_dgemm; o_demand; o_strategy;
                     o_seed; o_clients; o_warmup; o_duration;
                   }));
            (1, return Proto.Stats);
            (1, return Proto.Trace_dump);
          ]
      in
      let* id = int_range 0 1_000_000
      and* trace = opt (int_range 0 max_int)
      and* request = request in
      return { Proto.id; trace; request })
  in
  QCheck.Test.make ~count:200 ~name:"envelope codec fixpoint" (QCheck.make gen)
    (fun e ->
      match Proto.decode_request (Proto.encode_request e) with
      | Proto.Request e' -> e' = e
      | Proto.Bad _ -> false)

let test_envelope_qcheck_fixpoint () =
  QCheck.Test.check_exn prop_envelope_fixpoint

let test_spec_digest () =
  Alcotest.(check string) "equal specs, equal digests"
    (Proto.spec_digest syn8) (Proto.spec_digest syn8);
  let other = Proto.Synthetic
      { nodes = 8; power = 730.0; bandwidth = 1000.0; heterogeneous = false; seed = 43 } in
  Alcotest.(check bool) "seed changes the digest" true
    (Proto.spec_digest syn8 <> Proto.spec_digest other);
  Alcotest.(check bool) "catalog digests differently" true
    (Proto.spec_digest syn8 <> Proto.spec_digest (Proto.Catalog "x"))

(* ---------- wire framing ---------- *)

let test_wire_roundtrip () =
  let r = Wire.reader () in
  let frame = Wire.encode "hello" in
  Wire.feed r frame 0 (String.length frame);
  (match Wire.step r with
  | Wire.Frame p -> Alcotest.(check string) "payload" "hello" p
  | _ -> Alcotest.fail "expected a frame");
  match Wire.step r with
  | Wire.Need_more -> ()
  | _ -> Alcotest.fail "buffer should be empty"

let test_wire_chunked () =
  let r = Wire.reader () in
  let frame = Wire.encode "chunked payload with some length" in
  String.iteri
    (fun i _ ->
      (match Wire.step r with
      | Wire.Need_more -> ()
      | _ -> Alcotest.fail "frame completed early");
      Wire.feed r frame i 1)
    frame;
  match Wire.step r with
  | Wire.Frame p -> Alcotest.(check string) "payload" "chunked payload with some length" p
  | _ -> Alcotest.fail "expected a frame after the last byte"

let test_wire_several_frames_one_feed () =
  let r = Wire.reader () in
  let chunk = Wire.encode "one" ^ Wire.encode "" ^ Wire.encode "three" in
  Wire.feed r chunk 0 (String.length chunk);
  let next () =
    match Wire.step r with
    | Wire.Frame p -> p
    | _ -> Alcotest.fail "expected a frame"
  in
  Alcotest.(check string) "first" "one" (next ());
  Alcotest.(check string) "second (empty payload)" "" (next ());
  Alcotest.(check string) "third" "three" (next ());
  match Wire.step r with Wire.Need_more -> () | _ -> Alcotest.fail "drained"

let oversized_header () =
  let b = Bytes.create Wire.header_len in
  Bytes.set_int32_be b 0 (Int32.of_int (Wire.max_frame + 1));
  Bytes.to_string b

let test_wire_oversized () =
  let r = Wire.reader () in
  let h = oversized_header () in
  Wire.feed r h 0 (String.length h);
  (match Wire.step r with
  | Wire.Oversized n -> Alcotest.(check int) "declared length" (Wire.max_frame + 1) n
  | _ -> Alcotest.fail "expected Oversized");
  match Wire.encode (String.make (Wire.max_frame + 1) 'x') with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "encode should reject oversized payloads"

(* ---------- domain pool ---------- *)

let test_pool_submit_await () =
  let pool = Pool.create ~workers:2 () in
  Alcotest.(check int) "size" 2 (Pool.size pool);
  let futures = List.init 100 (fun i -> Pool.submit pool (fun () -> i * i)) in
  List.iteri
    (fun i f -> Alcotest.(check int) "result" (i * i) (Pool.await f))
    futures;
  Pool.shutdown pool

let test_pool_nested_helping () =
  (* one worker: awaiting subtasks inside a task must help, not deadlock *)
  let pool = Pool.create ~workers:1 () in
  let f =
    Pool.submit pool (fun () ->
        let subs = List.init 4 (fun i -> Pool.submit pool (fun () -> i * 10)) in
        List.fold_left (fun acc s -> acc + Pool.await s) 0 subs)
  in
  Alcotest.(check int) "nested sum" 60 (Pool.await f);
  Pool.shutdown pool

let test_pool_exception_propagates () =
  let pool = Pool.create ~workers:1 () in
  let f = Pool.submit pool (fun () -> failwith "boom") in
  (match Pool.await f with
  | exception Failure m -> Alcotest.(check string) "message" "boom" m
  | _ -> Alcotest.fail "expected the task's exception");
  Pool.shutdown pool

let test_pool_on_resolve_after_resolution () =
  (* the wakeup contract the server's pipe depends on: when the hook
     fires the future must already read as resolved, and it must fire
     even when the task raises *)
  let pool = Pool.create ~workers:1 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let observed = Atomic.make (-1) in
      let rec settle n =
        if Atomic.get observed < 0 && n > 0 then (
          Unix.sleepf 0.01;
          settle (n - 1))
      in
      let run_one body expect_exn =
        Atomic.set observed (-1);
        let fut_ref = ref None in
        (* gate: the task may not finish before [fut_ref] is filled, or
           the hook could not inspect its own future *)
        let ready = Atomic.make false in
        let on_resolve () =
          Atomic.set observed
            (match !fut_ref with
            | Some f when Pool.is_resolved f -> 1
            | _ -> 0)
        in
        let fut =
          Pool.submit ~on_resolve pool (fun () ->
              while not (Atomic.get ready) do
                Domain.cpu_relax ()
              done;
              body ())
        in
        fut_ref := Some fut;
        Atomic.set ready true;
        (match Pool.await fut with
        | (_ : int) ->
            if expect_exn then Alcotest.fail "expected the task's exception"
        | exception Failure _ when expect_exn -> ());
        settle 200;
        Alcotest.(check int) "hook saw a resolved future" 1
          (Atomic.get observed)
      in
      run_one (fun () -> 7) false;
      (* a raising task must still fire the hook *)
      run_one (fun () -> failwith "boom") true)

let test_pool_shutdown_semantics () =
  let pool = Pool.create ~workers:1 () in
  Pool.shutdown pool;
  Pool.shutdown pool;
  (* post-shutdown work runs inline on the submitting domain *)
  let f = Pool.submit pool (fun () -> 7) in
  Alcotest.(check bool) "inline tasks resolve immediately" true (Pool.is_resolved f);
  Alcotest.(check int) "inline result" 7 (Pool.await f)

(* ---------- plan cache ---------- *)

let entry text = { Cache.text; rho = 100.0; nodes_used = 5 }

let test_cache_hit_miss () =
  let c = Cache.create () in
  Alcotest.(check (option reject)) "empty cache misses" None
    (Cache.find c ~digest:"d" ~strategy:"heuristic" ~wapp:310.0 ~demand:None);
  Cache.add c ~digest:"d" ~strategy:"heuristic" ~wapp:310.0 ~demand:None (entry "t");
  (match Cache.find c ~digest:"d" ~strategy:"heuristic" ~wapp:310.0 ~demand:None with
  | Some e -> Alcotest.(check string) "hit text" "t" e.Cache.text
  | None -> Alcotest.fail "expected a hit");
  (* exact floats only: a nearby wapp in the same 3-digit band still misses *)
  Alcotest.(check bool) "near-miss on wapp" true
    (Cache.find c ~digest:"d" ~strategy:"heuristic" ~wapp:310.0000001 ~demand:None = None);
  Alcotest.(check bool) "demand distinguishes" true
    (Cache.find c ~digest:"d" ~strategy:"heuristic" ~wapp:310.0 ~demand:(Some 200.0) = None);
  Alcotest.(check bool) "strategy distinguishes" true
    (Cache.find c ~digest:"d" ~strategy:"star" ~wapp:310.0 ~demand:None = None);
  Alcotest.(check int) "hits" 1 (Cache.hits c);
  Alcotest.(check int) "misses" 4 (Cache.misses c);
  Alcotest.(check int) "size" 1 (Cache.size c)

let test_cache_lru_eviction () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "a");
  Cache.add c ~digest:"b" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "b");
  (* touch a so b is the least recently used *)
  ignore (Cache.find c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None);
  Cache.add c ~digest:"c" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "c");
  Alcotest.(check int) "evictions" 1 (Cache.evictions c);
  Alcotest.(check int) "size stays at capacity" 2 (Cache.size c);
  Alcotest.(check bool) "b evicted" true
    (Cache.find c ~digest:"b" ~strategy:"h" ~wapp:1.0 ~demand:None = None);
  Alcotest.(check bool) "a survived" true
    (Cache.find c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None <> None)

let test_cache_replace_same_key () =
  let c = Cache.create ~capacity:2 () in
  Cache.add c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "old");
  Cache.add c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "new");
  Alcotest.(check int) "no growth" 1 (Cache.size c);
  match Cache.find c ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None with
  | Some e -> Alcotest.(check string) "latest wins" "new" e.Cache.text
  | None -> Alcotest.fail "expected a hit"

let test_cache_invalidate_platform () =
  let c = Cache.create () in
  Cache.add c ~digest:"x" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "1");
  Cache.add c ~digest:"x" ~strategy:"h" ~wapp:2.0 ~demand:None (entry "2");
  Cache.add c ~digest:"y" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "3");
  Alcotest.(check int) "dropped both x entries" 2 (Cache.invalidate_platform c ~digest:"x");
  Alcotest.(check int) "invalidations" 2 (Cache.invalidations c);
  Alcotest.(check int) "y remains" 1 (Cache.size c);
  Alcotest.(check bool) "x gone" true
    (Cache.find c ~digest:"x" ~strategy:"h" ~wapp:1.0 ~demand:None = None);
  Alcotest.(check int) "nothing to drop twice" 0 (Cache.invalidate_platform c ~digest:"x")

(* ---------- sharded-planning equivalence ---------- *)

let plans_identical (a : Planner.plan) (b : Planner.plan) =
  Tree.equal a.Planner.tree b.Planner.tree
  && a.Planner.predicted_rho = b.Planner.predicted_rho
  && a.Planner.demand_met = b.Planner.demand_met
  && a.Planner.nodes_used = b.Planner.nodes_used
  && a.Planner.evaluations = b.Planner.evaluations

let prop_shard_equivalence pool =
  (* the service's load-bearing invariant: for any platform family,
     demand regime and shard count, the sharded plan is bit-identical to
     the sequential heuristic — same tree, same rho float, same probe
     count.  Speculation may miss; it must never change a decision. *)
  QCheck.Test.make ~count:25
    ~name:"sharded plan bit-identical to sequential heuristic"
    QCheck.(triple (int_range 0 10_000) (int_range 2 160) (int_range 1 4))
    (fun (seed, n, shards) ->
      let rng = Rng.create seed in
      let platform =
        match seed mod 3 with
        | 0 ->
            Generator.uniform_heterogeneous ~bandwidth:1000.0 ~rng ~n
              ~power_min:100.0 ~power_max:1000.0 ()
        | 1 -> Generator.grid5000_orsay ~rng ~n ()
        | _ -> Generator.homogeneous ~bandwidth:1000.0 ~n ~power:730.0 ()
      in
      let wapp = dgemm (100 + (seed mod 900)) in
      let demand =
        if seed mod 4 = 0 then Demand.rate (float_of_int ((seed mod 400) + 50))
        else Demand.unbounded
      in
      let sequential = Planner.run Planner.Heuristic params ~platform ~wapp ~demand in
      let sharded, _diag = Shard.plan ~shards ~pool params ~platform ~wapp ~demand in
      match (sequential, sharded) with
      | Ok a, Ok b -> plans_identical a b
      | Error a, Error b -> a = b
      | Ok _, Error _ | Error _, Ok _ -> false)

let test_shard_equivalence () =
  let pool = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () -> QCheck.Test.check_exn (prop_shard_equivalence pool))

let test_shard_diag () =
  let pool = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      let platform = Generator.homogeneous ~bandwidth:1000.0 ~n:100 ~power:730.0 () in
      let result, diag =
        Shard.plan ~shards:4 ~pool params ~platform ~wapp:(dgemm 310)
          ~demand:Demand.unbounded
      in
      (match result with
      | Ok _ -> ()
      | Error e -> Alcotest.fail (Adept.Error.to_string e));
      Alcotest.(check int) "all four shards used" 4 diag.Shard.shards_used;
      Alcotest.(check bool) "hint from shard plans" true (diag.Shard.hint > 0.0);
      (* a tiny platform cannot shard: sequential fallback *)
      let small = Generator.homogeneous ~bandwidth:1000.0 ~n:3 ~power:730.0 () in
      let _, diag =
        Shard.plan ~shards:4 ~pool params ~platform:small ~wapp:(dgemm 310)
          ~demand:Demand.unbounded
      in
      Alcotest.(check int) "fallback reports one shard" 1 diag.Shard.shards_used)

(* ---------- live server ---------- *)

let temp_socket_path () =
  let path = Filename.temp_file "adept-serve-test" ".sock" in
  Sys.remove path;
  path

(* The server runs in a child process, exactly like production
   (`adept serve` + `adept query`).  An in-process server thread is NOT
   an option on OCaml 5.1: with worker domains live, two systhreads of
   domain 0 parked in blocking sections (the serve loop's select plus
   the client's read) deadlock the runtime's stop-the-world handshake.
   Nor is [Unix.fork] — the pool and shard suites spawn domains first,
   and fork is forbidden once any domain was ever created.  So the test
   binary re-execs ITSELF via posix_spawn ([Unix.create_process_env]):
   when [server_socket_var] is set it becomes the server (see the hook
   below) instead of running the suites.  The child is drained with
   SIGTERM and must exit 0 — every test therefore also exercises
   graceful shutdown. *)
let server_socket_var = "ADEPT_SERVE_TEST_SOCKET"

(* When set, the child serves with observability on (value = shard
   count, so the traced suites can exercise the sharded stage spans).
   The golden-transcript child never sets it: the golden bytes pin the
   obs-off path. *)
let server_obs_var = "ADEPT_SERVE_TEST_OBS"
let server_access_var = "ADEPT_SERVE_TEST_ACCESS_LOG"
let server_prom_var = "ADEPT_SERVE_TEST_PROM"
let server_journal_var = "ADEPT_SERVE_TEST_JOURNAL"
let server_otlp_var = "ADEPT_SERVE_TEST_OTLP"

let run_as_server_child path =
  (* a SIGTERM racing server startup must still drain, hence the
     interim handler installed before [create]/[serve] *)
  let early_stop = ref false in
  let target = ref None in
  Sys.set_signal Sys.sigterm
    (Sys.Signal_handle
       (fun _ ->
         match !target with
         | Some server -> Server.stop server
         | None -> early_stop := true));
  let addr = Server.Unix_socket path in
  let obs, shards =
    match Sys.getenv_opt server_obs_var with
    | None -> (None, 1)
    | Some v ->
        let shards =
          match int_of_string_opt v with Some n when n > 0 -> n | _ -> 1
        in
        ( Some
            {
              (Server.default_obs ()) with
              Server.scrape_interval = 0.05;
              trace_slowest = 8;
              access_log = Sys.getenv_opt server_access_var;
              prom_path = Sys.getenv_opt server_prom_var;
              journal_dir = Sys.getenv_opt server_journal_var;
              otlp =
                Option.map
                  (fun s -> Server.Otlp_file s)
                  (Sys.getenv_opt server_otlp_var);
            },
          shards )
  in
  let config =
    (* one worker, one shard: counters and replies must not depend on
       the machine's core count (the transcript is golden) *)
    {
      (Server.default_config addr) with
      Server.workers = Some 1;
      shards = Some shards;
      obs;
    }
  in
  exit
    (try
       let server = Server.create config in
       target := Some server;
       if !early_stop then Server.stop server;
       Server.serve server;
       0
     with _ -> 1)

let () =
  match Sys.getenv_opt server_socket_var with
  | Some path -> run_as_server_child path
  | None -> ()

let with_server ?(extra_env = []) f =
  let path = temp_socket_path () in
  let addr = Server.Unix_socket path in
  let env =
    Array.append (Unix.environment ())
      (Array.of_list ((server_socket_var ^ "=" ^ path) :: extra_env))
  in
  let pid =
    Unix.create_process_env Sys.executable_name
      [| Sys.executable_name |]
      env Unix.stdin Unix.stdout Unix.stderr
  in
  let outcome =
    try Ok (f addr) with e -> Error (e, Printexc.get_raw_backtrace ())
  in
  (try Unix.kill pid Sys.sigterm with Unix.Unix_error _ -> ());
  let _, status = Unix.waitpid [] pid in
  match outcome with
  | Error (e, bt) -> Printexc.raise_with_backtrace e bt
  | Ok v -> (
      match status with
      | Unix.WEXITED 0 -> v
      | Unix.WEXITED n -> Alcotest.fail (Printf.sprintf "server exited with %d" n)
      | Unix.WSIGNALED s ->
          Alcotest.fail (Printf.sprintf "server killed by signal %d" s)
      | Unix.WSTOPPED _ -> Alcotest.fail "server stopped")

let rec connect_raw ?(attempts = 200) addr =
  match addr with
  | Server.Tcp _ -> assert false
  | Server.Unix_socket path -> (
      let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
      match Unix.connect fd (Unix.ADDR_UNIX path) with
      | () -> fd
      | exception Unix.Unix_error ((Unix.ENOENT | Unix.ECONNREFUSED), _, _)
        when attempts > 0 ->
          Unix.close fd;
          Unix.sleepf 0.02;
          connect_raw ~attempts:(attempts - 1) addr)

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* The golden session: typed requests plus raw bad frames on one
   connection.  Every exchange is deterministic — fixed spec, fixed
   simulation seed, single worker — so both directions of the dialogue
   can be pinned byte-for-byte. *)
let session_requests =
  [
    `Typed { Proto.id = 1; trace = None; request = plan_syn8 };
    `Typed { Proto.id = 2; trace = None; request = plan_syn8 };
    `Typed
      {
        Proto.id = 3;
        trace = None;
        request =
          Proto.Replan
            {
              r_spec = syn8;
              r_dgemm = 310;
              r_demand = None;
              r_strategy = "heuristic";
              r_failed = [ 1 ];
            };
      };
    `Typed { Proto.id = 4; trace = None; request = plan_syn8 };
    `Raw "{\"id\":7,\"method\":\"frobnicate\",\"params\":{}}";
    `Raw "this is not json";
    `Typed
      {
        Proto.id = 8;
        trace = None;
        request =
          Proto.Observe
            {
              o_spec = syn8;
              o_dgemm = 310;
              o_demand = None;
              o_strategy = "heuristic";
              o_seed = 42;
              o_clients = 10;
              o_warmup = 0.5;
              o_duration = 1.0;
            };
      };
    `Typed { Proto.id = 9; trace = None; request = Proto.Stats };
  ]

(* Returns the transcript (one JSON object per line, [c2s]/[s2c]) and
   the decoded replies in exchange order. *)
let run_session () =
  with_server (fun addr ->
      let fd = connect_raw addr in
      Fun.protect
        ~finally:(fun () -> close_quietly fd)
        (fun () ->
          let buf = Buffer.create 4096 in
          let line dir payload =
            Buffer.add_string buf
              (Json.to_string (Json.Obj [ (dir, Json.String payload) ]));
            Buffer.add_char buf '\n'
          in
          let replies =
            List.map
              (fun req ->
                let payload =
                  match req with
                  | `Typed e -> Proto.encode_request e
                  | `Raw s -> s
                in
                line "c2s" payload;
                Wire.write_frame fd payload;
                let reply = Wire.read_frame fd in
                line "s2c" reply;
                match Proto.decode_reply reply with
                | Ok r -> r
                | Error e -> Alcotest.fail ("undecodable reply: " ^ e))
              session_requests
          in
          (Buffer.contents buf, replies)))

let test_session_semantics () =
  let _, replies = run_session () in
  let nth i = (List.nth replies i).Proto.response in
  let id i = (List.nth replies i).Proto.reply_id in
  (* cold plan, cached repeat, invalidation by the replan, cold again *)
  (match (nth 0, nth 1, nth 3) with
  | Proto.Plan_ok a, Proto.Plan_ok b, Proto.Plan_ok c ->
      Alcotest.(check bool) "first plan is cold" false a.cached;
      Alcotest.(check bool) "second plan is cached" true b.cached;
      Alcotest.(check bool) "replan invalidated the cache" false c.cached;
      Alcotest.(check bool) "cached reply identical" true
        (a.text = b.text && a.rho = b.rho && a.nodes_used = b.nodes_used)
  | _ -> Alcotest.fail "expected three Plan_ok replies");
  (match nth 2 with
  | Proto.Replan_ok r -> Alcotest.(check bool) "replan rho" true (r.rho_after > 0.0)
  | _ -> Alcotest.fail "expected Replan_ok");
  (* bad frames answered with typed errors, connection still usable *)
  (match nth 4 with
  | Proto.Error (Proto.Unknown_method "frobnicate") ->
      Alcotest.(check int) "unknown method echoes the id" 7 (id 4)
  | _ -> Alcotest.fail "expected Unknown_method");
  (match nth 5 with
  | Proto.Error Proto.Parse_error ->
      Alcotest.(check int) "unparsable frame replies with id 0" 0 (id 5)
  | _ -> Alcotest.fail "expected Parse_error");
  (match nth 6 with
  | Proto.Observe_ok o -> Alcotest.(check bool) "throughput" true (o.throughput > 0.0)
  | _ -> Alcotest.fail "expected Observe_ok");
  match nth 7 with
  | Proto.Stats_ok s ->
      Alcotest.(check bool) "deterministic counters" true
        (s.Proto.plan_requests = 3 && s.Proto.replan_requests = 1
        && s.Proto.observe_requests = 1 && s.Proto.stats_requests = 1
        && s.Proto.errors = 2 && s.Proto.cache_hits = 1
        && s.Proto.cache_misses = 2 && s.Proto.cache_evictions = 0
        && s.Proto.cache_invalidations = 1 && s.Proto.coalesced = 0
        && s.Proto.workers = 1 && s.Proto.shards = 1)
  | _ -> Alcotest.fail "expected Stats_ok"

let read_golden name =
  In_channel.with_open_bin
    (Filename.concat (Filename.dirname Sys.executable_name) name)
    In_channel.input_all

let test_golden_transcript () =
  let got, _ = run_session () in
  Alcotest.(check string)
    "session transcript is byte-identical (SERVE_GOLDEN_OUT regenerates)"
    (read_golden "golden/serve_session.jsonl")
    got

let test_oversized_frame_closes_connection () =
  with_server (fun addr ->
      let fd = connect_raw addr in
      let h = oversized_header () in
      let n = Unix.write_substring fd h 0 (String.length h) in
      Alcotest.(check int) "header sent" (String.length h) n;
      (match Wire.read_frame fd with
      | exception End_of_file -> ()
      | _ -> Alcotest.fail "server should close on an oversized prefix");
      close_quietly fd;
      (* the server itself survived *)
      let c = Client.connect addr in
      (match Client.call c Proto.Stats with
      | Ok (Proto.Stats_ok s) ->
          Alcotest.(check int) "no request was dispatched" 0 s.Proto.plan_requests
      | Ok _ -> Alcotest.fail "expected Stats_ok"
      | Error e -> Alcotest.fail e);
      Client.close c)

let test_mid_request_disconnect () =
  with_server (fun addr ->
      let fd = connect_raw addr in
      (* header promising 50 bytes, then only 10, then a hard close *)
      let b = Bytes.create Wire.header_len in
      Bytes.set_int32_be b 0 50l;
      ignore (Unix.write fd b 0 Wire.header_len);
      ignore (Unix.write_substring fd "0123456789" 0 10);
      close_quietly fd;
      (* a second client is served as if nothing happened *)
      let c = Client.connect addr in
      (match Client.call c plan_syn8 with
      | Ok (Proto.Plan_ok p) ->
          Alcotest.(check bool) "planned" true (p.rho > 0.0 && not p.cached)
      | Ok (Proto.Error k) -> Alcotest.fail (snd (Proto.error_kind_fields k))
      | Ok _ -> Alcotest.fail "expected Plan_ok"
      | Error e -> Alcotest.fail e);
      Client.close c)

let test_client_call_no_cache () =
  (* use_cache:false bypasses the cache in both directions *)
  with_server (fun addr ->
      let c =
        match Client.connect_retry addr with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      let cold =
        Proto.Plan
          { spec = syn8; dgemm = 310; demand = None; strategy = "heuristic"; use_cache = false }
      in
      (match (Client.call c cold, Client.call c cold) with
      | Ok (Proto.Plan_ok a), Ok (Proto.Plan_ok b) ->
          Alcotest.(check bool) "never cached" false (a.cached || b.cached);
          Alcotest.(check bool) "still deterministic" true
            (a.text = b.text && a.rho = b.rho)
      | _ -> Alcotest.fail "expected two Plan_ok replies");
      (match Client.call c Proto.Stats with
      | Ok (Proto.Stats_ok s) ->
          Alcotest.(check int) "cache untouched" 0 (s.Proto.cache_hits + s.Proto.cache_misses)
      | _ -> Alcotest.fail "expected Stats_ok");
      Client.close c)

(* ---------- wall-clock observability over the live server ---------- *)

let collect_raw_replies addr payloads =
  let fd = connect_raw addr in
  Fun.protect
    ~finally:(fun () -> close_quietly fd)
    (fun () ->
      List.map
        (fun payload ->
          Wire.write_frame fd payload;
          Wire.read_frame fd)
        payloads)

let test_trace_dump_requires_obs () =
  with_server (fun addr ->
      let c =
        match Client.connect_retry addr with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      (match Client.call c Proto.Trace_dump with
      | Ok (Proto.Error (Proto.Invalid_params _)) -> ()
      | Ok _ -> Alcotest.fail "trace dump on an untraced server must error"
      | Error e -> Alcotest.fail e);
      (* the error is typed, not fatal: the connection still serves *)
      (match Client.call c Proto.Stats with
      | Ok (Proto.Stats_ok s) ->
          Alcotest.(check bool) "no live block without obs" true
            (s.Proto.live = None)
      | _ -> Alcotest.fail "expected Stats_ok");
      Client.close c)

let test_tracing_byte_identical () =
  (* the hard invariant of the whole observability layer: raw reply
     bytes are identical with tracing on (every request sampled) and
     off — for traced and untraced envelopes alike *)
  let payloads =
    List.map Proto.encode_request
      [
        { Proto.id = 1; trace = Some 101; request = plan_syn8 };
        { Proto.id = 2; trace = Some 102; request = plan_syn8 };
        {
          Proto.id = 3;
          trace = Some 103;
          request =
            Proto.Replan
              {
                r_spec = syn8;
                r_dgemm = 310;
                r_demand = None;
                r_strategy = "heuristic";
                r_failed = [ 1 ];
              };
        };
        { Proto.id = 4; trace = None; request = plan_syn8 };
        {
          Proto.id = 5;
          trace = Some 105;
          request =
            Proto.Observe
              {
                o_spec = syn8;
                o_dgemm = 310;
                o_demand = None;
                o_strategy = "heuristic";
                o_seed = 42;
                o_clients = 10;
                o_warmup = 0.5;
                o_duration = 1.0;
              };
        };
      ]
    @ [ "{\"id\":7,\"method\":\"frobnicate\",\"params\":{}}" ]
  in
  let plain = with_server (fun addr -> collect_raw_replies addr payloads) in
  let traced =
    with_server
      ~extra_env:[ server_obs_var ^ "=1" ]
      (fun addr -> collect_raw_replies addr payloads)
  in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "reply %d byte-identical with tracing on" i)
        a b)
    (List.combine plain traced)

let test_trace_dump_spans () =
  with_server
    ~extra_env:[ server_obs_var ^ "=2" ]
    (fun addr ->
      let c =
        match Client.connect_retry ~trace_base:1_000 addr with
        | Ok c -> c
        | Error e -> Alcotest.fail e
      in
      (* a cold sharded plan, a cache hit, then the dump *)
      (match Client.call c plan_syn8 with
      | Ok (Proto.Plan_ok p) ->
          Alcotest.(check bool) "cold" false p.cached
      | _ -> Alcotest.fail "expected Plan_ok");
      (match Client.call c plan_syn8 with
      | Ok (Proto.Plan_ok p) -> Alcotest.(check bool) "hit" true p.cached
      | _ -> Alcotest.fail "expected Plan_ok");
      (match Client.call c Proto.Trace_dump with
      | Ok (Proto.Trace_ok { chrome }) ->
          (match Json.of_string chrome with
          | Ok _ -> ()
          | Error e -> Alcotest.fail ("chrome trace is not JSON: " ^ e));
          List.iter
            (fun span ->
              Alcotest.(check bool) ("dump has " ^ span) true
                (contains chrome ("\"" ^ span ^ "\"")))
            [
              "serve.frame_read"; "serve.parse"; "serve.cache_lookup";
              "serve.shard_plan"; "serve.replay"; "serve.render";
              "serve.write";
            ]
      | Ok _ -> Alcotest.fail "expected Trace_ok"
      | Error e -> Alcotest.fail e);
      (* live stats report the sampled traces *)
      (match Client.call c Proto.Stats with
      | Ok (Proto.Stats_ok { live = Some l; _ }) ->
          Alcotest.(check bool) "traces sampled" true (l.Proto.traces_sampled >= 2);
          Alcotest.(check bool) "uptime moves" true (l.Proto.uptime_seconds >= 0.0);
          Alcotest.(check bool) "hit ratio in range" true
            (l.Proto.cache_hit_ratio >= 0.0 && l.Proto.cache_hit_ratio <= 1.0)
      | Ok (Proto.Stats_ok { live = None; _ }) ->
          Alcotest.fail "obs server must report live stats"
      | _ -> Alcotest.fail "expected Stats_ok");
      Client.close c)

let read_all path = In_channel.with_open_bin path In_channel.input_all

let test_access_log () =
  let log = Filename.temp_file "adept-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log with Sys_error _ -> ())
    (fun () ->
      with_server
        ~extra_env:
          [ server_obs_var ^ "=1"; server_access_var ^ "=" ^ log ]
        (fun addr ->
          let c =
            match Client.connect_retry ~trace_base:500 addr with
            | Ok c -> c
            | Error e -> Alcotest.fail e
          in
          ignore (Client.call c plan_syn8);
          ignore (Client.call c plan_syn8);
          ignore (Client.call c Proto.Stats);
          Client.close c);
      let lines =
        read_all log |> String.split_on_char '\n'
        |> List.filter (fun l -> l <> "")
      in
      Alcotest.(check int) "one line per request" 3 (List.length lines);
      let objs =
        List.map
          (fun l ->
            match Json.of_string l with
            | Ok (Json.Obj o) -> o
            | _ -> Alcotest.fail ("access log line is not an object: " ^ l))
          lines
      in
      let str o k = Option.bind (List.assoc_opt k o) Json.to_string_v in
      let methods = List.filter_map (fun o -> str o "method") objs in
      Alcotest.(check (list string)) "methods in order"
        [ "plan"; "plan"; "stats" ] methods;
      List.iter
        (fun o ->
          Alcotest.(check bool) "status ok" true (str o "status" = Some "ok");
          Alcotest.(check bool) "trace id present" true
            (match List.assoc_opt "trace" o with
            | Some (Json.Int _) -> true
            | _ -> false);
          Alcotest.(check bool) "duration present" true
            (match Option.bind (List.assoc_opt "duration" o) Json.to_float with
            | Some d -> d >= 0.0
            | None -> false))
        objs;
      (* cold plan misses, repeat hits *)
      Alcotest.(check (list (option string))) "cache column"
        [ Some "miss"; Some "hit"; None ]
        (List.map (fun o -> str o "cache") objs))

let test_prom_snapshot () =
  let prom = Filename.temp_file "adept-prom" ".prom" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove prom with Sys_error _ -> ())
    (fun () ->
      with_server
        ~extra_env:[ server_obs_var ^ "=1"; server_prom_var ^ "=" ^ prom ]
        (fun addr ->
          let c =
            match Client.connect_retry ~trace_base:0 addr with
            | Ok c -> c
            | Error e -> Alcotest.fail e
          in
          ignore (Client.call c plan_syn8);
          ignore (Client.call c plan_syn8);
          ignore (Client.call c Proto.Stats);
          Client.close c);
      (* teardown rewrites the snapshot unconditionally *)
      let text = read_all prom in
      List.iter
        (fun metric ->
          Alcotest.(check bool) ("HELP for " ^ metric) true
            (contains text ("# HELP " ^ metric)))
        [
          "adept_serve_requests_total"; "adept_serve_request_seconds";
          "adept_serve_cache_hits_total"; "adept_serve_cache_misses_total";
          "adept_serve_cache_hit_ratio"; "adept_serve_inflight_requests";
          "adept_serve_traces_sampled_total"; "adept_serve_scrapes_total";
          "adept_runtime_gc_pause_seconds"; "adept_runtime_events_total";
        ])

let test_address_parsing () =
  (match Server.address_of_string "unix:/tmp/x.sock" with
  | Ok (Server.Unix_socket "/tmp/x.sock") -> ()
  | _ -> Alcotest.fail "unix: prefix");
  (match Server.address_of_string "tcp:localhost:9090" with
  | Ok (Server.Tcp ("localhost", 9090)) -> ()
  | _ -> Alcotest.fail "tcp:host:port");
  (match Server.address_of_string "plain.sock" with
  | Ok (Server.Unix_socket "plain.sock") -> ()
  | _ -> Alcotest.fail "bare path is a unix socket");
  (match Server.address_of_string "tcp:nope" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "tcp without a port must be rejected");
  List.iter
    (fun s ->
      match Server.address_of_string s with
      | Ok a -> Alcotest.(check string) ("roundtrip " ^ s) s (Server.address_to_string a)
      | Error e -> Alcotest.fail e)
    [ "unix:/tmp/x.sock"; "tcp:localhost:9090" ]

(* ---------- observability units ---------- *)

module Obs = Adept_obs
module Prof = Adept_serve.Prof
module Rtm = Adept_serve.Runtime_metrics
module Rt = Adept_obs.Request_trace
module Clock = Adept_obs.Clock

let test_clock_sources () =
  let m = Clock.manual ~start:5.0 () in
  Alcotest.(check (float 0.0)) "manual start" 5.0 (Clock.now m);
  Clock.advance m 2.5;
  Alcotest.(check (float 0.0)) "manual advance" 7.5 (Clock.now m);
  (match Clock.advance m (-1.0) with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "negative advance must raise");
  Alcotest.(check bool) "manual is manual" true (Clock.is_manual m);
  (* a stepped system clock can never move a source clock backwards *)
  let readings = ref [ 10.0; 20.0; 15.0; 30.0 ] in
  let read () =
    match !readings with [] -> 99.0 | r :: tl -> readings := tl; r
  in
  let s = Clock.source read in
  Alcotest.(check bool) "source is not manual" false (Clock.is_manual s);
  let seen = List.init 4 (fun _ -> Clock.now s) in
  Alcotest.(check (list (float 0.0))) "clamped monotone"
    [ 10.0; 20.0; 20.0; 30.0 ] seen;
  (* [raw] hands out the unclamped reader (safe on worker domains) *)
  let vals = ref [ 5.0; 2.0 ] in
  let s2 = Clock.source (fun () -> match !vals with [] -> 0.0 | v :: tl -> vals := tl; v) in
  let raw = Clock.raw s2 in
  Alcotest.(check (float 0.0)) "raw first" 5.0 (raw ());
  Alcotest.(check (float 0.0)) "raw is unclamped" 2.0 (raw ())

let test_trace_sampling_deterministic () =
  (* head sampling is a pure function of the trace id: two stores with
     the same rate agree on every id, and no RNG state is consulted *)
  let a = Rt.create ~sample_rate:0.35 () in
  let b = Rt.create ~sample_rate:0.35 () in
  let ids = List.init 400 (fun i -> 7919 * (i + 1)) in
  let da = List.map (Rt.would_sample a) ids in
  let db = List.map (Rt.would_sample b) ids in
  Alcotest.(check bool) "identical decisions" true (da = db);
  Alcotest.(check bool) "some sampled" true (List.mem true da);
  Alcotest.(check bool) "some skipped" true (List.mem false da);
  List.iter
    (fun id ->
      match Rt.begin_with_id b ~id ~now:0.0 with
      | Some h ->
          Alcotest.(check bool) "handle carries the wire id" true
            (Rt.trace_id h = id);
          Alcotest.(check bool) "begin agrees with would_sample" true
            (Rt.would_sample a id);
          Rt.abandon b h
      | None ->
          Alcotest.(check bool) "skip agrees with would_sample" false
            (Rt.would_sample a id))
    ids;
  let always = Rt.create ~sample_rate:1.0 () in
  let never = Rt.create ~sample_rate:0.0 () in
  Alcotest.(check bool) "rate 1 samples all" true
    (List.for_all (Rt.would_sample always) ids);
  Alcotest.(check bool) "rate 0 samples none" true
    (List.for_all (fun id -> not (Rt.would_sample never id)) ids)

let test_prof_samples () =
  let t = ref 0.0 in
  let now () =
    let v = !t in
    t := v +. 1.0;
    v
  in
  let p = Prof.create ~now in
  Alcotest.(check int) "None is a free no-op" 3
    (Prof.time None ~stage:"x" (fun () -> 3));
  Alcotest.(check int) "result passes through" 7
    (Prof.time (Some p) ~stage:"shard" ~shard:2 (fun () -> 7));
  (match Prof.time (Some p) ~stage:"replay" (fun () -> failwith "boom") with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "the thunk's exception must propagate");
  match Prof.samples p with
  | [ s1; s2 ] ->
      Alcotest.(check string) "stage 1" "shard" s1.Prof.ps_stage;
      Alcotest.(check int) "shard index" 2 s1.Prof.ps_shard;
      Alcotest.(check (float 0.0)) "start 1" 0.0 s1.Prof.ps_start;
      Alcotest.(check (float 0.0)) "stop 1" 1.0 s1.Prof.ps_stop;
      Alcotest.(check string) "stage 2 recorded despite the raise" "replay"
        s2.Prof.ps_stage;
      Alcotest.(check int) "no shard" (-1) s2.Prof.ps_shard
  | l -> Alcotest.fail (Printf.sprintf "expected 2 samples, got %d" (List.length l))

let test_cache_eviction_age () =
  let ages = ref [] in
  let c = Cache.create ~capacity:1 ~on_evict:(fun ~age -> ages := age :: !ages) () in
  Cache.add c ~now:10.0 ~digest:"a" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "a");
  Cache.add c ~now:25.5 ~digest:"b" ~strategy:"h" ~wapp:1.0 ~demand:None (entry "b");
  Alcotest.(check (list (float 1e-9))) "age = insertion to eviction" [ 15.5 ] !ages;
  Alcotest.(check (float 1e-9)) "no lookups yet" 0.0 (Cache.hit_ratio c);
  ignore (Cache.find c ~digest:"b" ~strategy:"h" ~wapp:1.0 ~demand:None);
  ignore (Cache.find c ~digest:"z" ~strategy:"h" ~wapp:1.0 ~demand:None);
  Alcotest.(check (float 1e-9)) "one hit, one miss" 0.5 (Cache.hit_ratio c)

let test_pool_busy_seconds () =
  let pool = Pool.create ~workers:2 () in
  Fun.protect
    ~finally:(fun () -> Pool.shutdown pool)
    (fun () ->
      Alcotest.(check int) "one cell per worker" 2
        (Array.length (Pool.busy_seconds pool));
      (* poll rather than await: await helps, and a helped task runs on
         this domain — the point here is the WORKER's accounting *)
      let f = Pool.submit pool (fun () -> Unix.sleepf 0.05) in
      let rec settle n =
        if (not (Pool.is_resolved f)) && n > 0 then begin
          Unix.sleepf 0.01;
          settle (n - 1)
        end
      in
      settle 200;
      Pool.await f;
      let total = Array.fold_left ( +. ) 0.0 (Pool.busy_seconds pool) in
      Alcotest.(check bool) "busy time accrued" true (total >= 0.04);
      let again = Array.fold_left ( +. ) 0.0 (Pool.busy_seconds pool) in
      Alcotest.(check bool) "monotone" true (again >= total))

let test_runtime_metrics () =
  let reg = Obs.Registry.create () in
  match Rtm.start ~registry:reg () with
  | Error e -> Alcotest.fail ("runtime events unavailable: " ^ e)
  | Ok rm ->
      (* the full pause metric set exists before any collection *)
      (match Obs.Registry.find reg "adept_runtime_gc_pause_seconds" with
      | Some fam ->
          Alcotest.(check int) "one series per pause phase"
            (List.length Rtm.pause_phases)
            (List.length fam.Obs.Registry.series)
      | None -> Alcotest.fail "pause histogram not pre-registered");
      (* allocate hard so minor collections certainly happen *)
      let junk = ref [] in
      for i = 0 to 500 do
        junk := Array.make 10_000 (float_of_int i) :: !junk;
        if i mod 50 = 0 then junk := []
      done;
      Gc.full_major ();
      let drained = ref 0 in
      for _ = 1 to 10 do
        drained := !drained + Rtm.poll rm
      done;
      Alcotest.(check bool) "events drained" true (!drained > 0);
      (match Obs.Registry.find reg "adept_runtime_gc_pause_seconds" with
      | Some fam ->
          let pauses =
            List.fold_left
              (fun acc (_, v) ->
                match v with
                | Obs.Registry.Histogram s -> acc + Obs.Histogram.count s
                | _ -> acc)
              0 fam.Obs.Registry.series
          in
          Alcotest.(check bool) "non-zero gc pauses recorded" true (pauses > 0)
      | None -> Alcotest.fail "pause histogram vanished");
      match Obs.Registry.find reg "adept_runtime_events_total" with
      | Some _ -> ()
      | None -> Alcotest.fail "event counter missing"

(* ---------- alert timeline (golden) ---------- *)

(* The serve rule set over a manual clock: a forced cache-hit-ratio
   collapse arms, fires after its for-window, and resolves on
   recovery, while the healthy rules stay silent throughout.  Every
   input is a fixed float, so the exported timeline is golden. *)
let alert_timeline () =
  let rules = Server.default_rules () in
  let ts =
    Obs.Timeseries.create ~retention:300.0
      (List.concat_map Obs.Rule.selectors rules)
  in
  let alerts =
    match Obs.Alert.create ~timeseries:ts rules with
    | Ok a -> a
    | Error e -> failwith e
  in
  let reg = Obs.Registry.create () in
  let latency = Obs.Registry.histogram reg Obs.Semconv.serve_request_seconds in
  let inflight = Obs.Registry.gauge reg Obs.Semconv.serve_inflight_requests in
  let hit_ratio = Obs.Registry.gauge reg Obs.Semconv.serve_cache_hit_ratio in
  let misses = Obs.Registry.counter reg Obs.Semconv.serve_cache_misses_total in
  Obs.Gauge.set inflight 2.0;
  for sec = 0 to 30 do
    let now = float_of_int sec in
    Obs.Histogram.record latency 0.01;
    Obs.Counter.inc misses;
    Obs.Gauge.set hit_ratio (if sec >= 10 && sec < 25 then 0.2 else 0.9);
    Obs.Timeseries.scrape ts ~registry:reg ~now;
    Obs.Alert.eval alerts ~now
  done;
  (alerts, Obs.Export.alert_timeline_jsonl alerts)

let test_alert_timeline_golden () =
  let alerts, got = alert_timeline () in
  (* semantics first: exactly one rule ran the full life cycle *)
  let names =
    List.filter_map
      (fun (tr : Obs.Alert.transition) ->
        Some tr.Obs.Alert.rule.Obs.Rule.name)
      (Obs.Alert.transitions alerts)
    |> List.sort_uniq compare
  in
  Alcotest.(check (list string)) "only the hit-ratio rule transitioned"
    [ "serve_cache_hit_ratio_low" ] names;
  Alcotest.(check (list string)) "nothing still firing" []
    (Obs.Alert.firing_names alerts);
  Alcotest.(check string)
    "alert timeline is byte-identical (SERVE_ALERTS_GOLDEN_OUT regenerates)"
    (read_golden "golden/serve_alerts.jsonl")
    got

(* ---------- clock edges ---------- *)

let test_clock_edges () =
  (* zero advance is a no-op (the guard rejects strictly-negative) *)
  let m = Clock.manual ~start:3.0 () in
  Clock.advance m 0.0;
  Alcotest.(check (float 0.0)) "zero advance is a no-op" 3.0 (Clock.now m);
  (match Clock.advance m Float.nan with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "NaN advance must raise");
  (match Clock.advance m neg_infinity with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "-inf advance must raise");
  Alcotest.(check (float 0.0)) "rejected advances left time alone" 3.0
    (Clock.now m);
  Clock.set m 3.0;
  Alcotest.(check (float 0.0)) "set to the current instant is allowed" 3.0
    (Clock.now m);
  (match Clock.set m 2.9 with
  | exception Invalid_argument _ -> ()
  | () -> Alcotest.fail "backwards set must raise");
  (* the clamp holds across interleaved raw reads: [raw] bypasses (and
     never disturbs) the monotonic clamp state *)
  let vals = ref [ 10.0; 8.0; 12.0; 11.0; 13.0; Float.nan ] in
  let read () = match !vals with [] -> 99.0 | v :: tl -> vals := tl; v in
  let s = Clock.source read in
  let raw = Clock.raw s in
  Alcotest.(check (float 0.0)) "now 1" 10.0 (Clock.now s);
  Alcotest.(check (float 0.0)) "raw jitters backwards" 8.0 (raw ());
  Alcotest.(check (float 0.0)) "now unaffected by raw jitter" 12.0
    (Clock.now s);
  Alcotest.(check (float 0.0)) "raw again" 11.0 (raw ());
  Alcotest.(check (float 0.0)) "now keeps climbing" 13.0 (Clock.now s);
  Alcotest.(check (float 0.0)) "a NaN reading never moves the clamp" 13.0
    (Clock.now s)

(* ---------- flight-recorder journal ---------- *)

let temp_dir () =
  let path = Filename.temp_file "adept-journal" "" in
  Sys.remove path;
  Unix.mkdir path 0o755;
  path

let rec rm_rf path =
  if Sys.is_directory path then begin
    Array.iter (fun f -> rm_rf (Filename.concat path f)) (Sys.readdir path);
    Unix.rmdir path
  end
  else Sys.remove path

let with_temp_dir f =
  let dir = temp_dir () in
  Fun.protect ~finally:(fun () -> try rm_rf dir with Sys_error _ -> ()) (fun () -> f dir)

module Journal = Obs.Journal

let sample_span i =
  {
    Rt.sp_id = i;
    sp_parent = i - 1;
    sp_kind = (if i = 0 then Rt.Stage Rt.Frame_read else Rt.Stage Rt.Parse);
    sp_node = -1;
    sp_start = float_of_int i;
    sp_stop = float_of_int i +. 0.5;
  }

let sample_records =
  [
    Journal.Meta
      {
        m_at = 1.0;
        m_sample_rate = 0.5;
        m_max_traces = 8;
        m_max_spans = 64;
        m_scrape_interval = 0.25;
        m_retention = 300.0;
        m_workers = 2;
        m_shards = 4;
      };
    Journal.Begin_request { b_at = 1.5; b_trace = 42; b_sampled = true };
    Journal.Begin_request { b_at = 1.6; b_trace = 43; b_sampled = false };
    Journal.Finish
      {
        f_at = 2.0;
        f_trace = 42;
        f_issued = 1.5;
        f_conn = 3;
        f_spans = Some (Array.init 3 sample_span);
        f_dropped_spans = 0;
      };
    Journal.Finish
      {
        f_at = 2.1;
        f_trace = 44;
        f_issued = 1.9;
        f_conn = 3;
        f_spans = None;
        f_dropped_spans = 7;
      };
    Journal.Scrape
      {
        j_at = 2.5;
        j_uptime = 1.5;
        j_plans = 10;
        j_replans = 1;
        j_observes = 0;
        j_stats = 2;
        j_errors = 1;
        j_coalesced = 3;
        j_cache_hits = 4;
        j_cache_misses = 6;
        j_cache_evictions = 1;
        j_cache_invalidations = 0;
        j_inflight = 2;
        j_latency_p50 = 0.001;
        j_latency_p99 = 0.125;
        j_hit_ratio = 0.4;
        j_gc_pause_p99 = 0.0002;
        j_traces_sampled = 5;
        j_busy = [ 0.25; 1.0 ];
      };
    Journal.Alert_edge
      {
        a_at = 2.6;
        a_name = "serve_latency_p99_high";
        a_severity = "warning";
        a_state = "firing";
        a_value = 0.125;
      };
    Journal.Access { x_at = 2.7; x_line = "{\"method\":\"plan\"}" };
    Journal.Dump_marker { d_at = 3.0 };
  ]

let test_journal_roundtrip () =
  (* payload codec is a fixpoint for every record shape *)
  List.iter
    (fun r ->
      match Journal.decode (Journal.encode r) with
      | Some r' -> Alcotest.(check bool) "codec fixpoint" true (r = r')
      | None -> Alcotest.fail "decode returned None on a valid payload")
    sample_records;
  with_temp_dir (fun dir ->
      (match Journal.create dir with
      | Error e -> Alcotest.fail e
      | Ok w ->
          List.iter (fun r -> ignore (Journal.append w r)) sample_records;
          Alcotest.(check int) "records_written"
            (List.length sample_records)
            (Journal.records_written w);
          Journal.close w);
      match Journal.open_ dir with
      | Error e -> Alcotest.fail e
      | Ok rd ->
          Alcotest.(check bool) "records survive the disk roundtrip" true
            (Journal.records rd = sample_records);
          let s = Journal.stats rd in
          Alcotest.(check int) "one segment" 1 s.Journal.r_segments;
          Alcotest.(check int) "no torn tail" 0 s.Journal.r_truncated)

let test_journal_rotation () =
  with_temp_dir (fun dir ->
      match Journal.create ~segment_bytes:4096 ~max_segments:2 dir with
      | Error e -> Alcotest.fail e
      | Ok w ->
          (* each access record is ~100 framed bytes: hundreds of
             appends must rotate and prune down to the newest two *)
          for i = 1 to 400 do
            ignore
              (Journal.append w
                 (Journal.Access
                    {
                      x_at = float_of_int i;
                      x_line = String.make 80 (Char.chr (65 + (i mod 26)));
                    }))
          done;
          Journal.close w;
          let segments =
            Sys.readdir dir |> Array.to_list
            |> List.filter (fun f -> Filename.check_suffix f ".adj")
          in
          Alcotest.(check int) "pruned to max_segments" 2
            (List.length segments);
          (match Journal.open_ dir with
          | Error e -> Alcotest.fail e
          | Ok rd ->
              let recs = Journal.records rd in
              Alcotest.(check bool) "a bounded suffix survives" true
                (List.length recs > 0 && List.length recs < 400);
              (* the retained records are the newest, contiguous *)
              match (recs, List.rev recs) with
              | ( Journal.Access { x_at = first_at; _ } :: _,
                  Journal.Access { x_at = last_at; _ } :: _ ) ->
                  Alcotest.(check (float 0.0)) "suffix ends at the last append"
                    400.0 last_at;
                  Alcotest.(check int) "suffix is contiguous"
                    (List.length recs)
                    (int_of_float (last_at -. first_at) + 1)
              | _ -> Alcotest.fail "expected access records"))

let test_journal_torn_tail () =
  with_temp_dir (fun dir ->
      (match Journal.create dir with
      | Error e -> Alcotest.fail e
      | Ok w ->
          List.iter (fun r -> ignore (Journal.append w r)) sample_records;
          Journal.close w);
      let seg =
        Sys.readdir dir |> Array.to_list
        |> List.filter (fun f -> Filename.check_suffix f ".adj")
        |> List.sort compare |> List.rev |> List.hd
        |> Filename.concat dir
      in
      (* crash mid-write: chop 3 bytes off the newest segment's tail *)
      let all = read_all seg in
      Out_channel.with_open_bin seg (fun oc ->
          Out_channel.output_string oc
            (String.sub all 0 (String.length all - 3)));
      (match Journal.open_ dir with
      | Error e -> Alcotest.fail e
      | Ok rd ->
          let expect_whole =
            List.filteri
              (fun i _ -> i < List.length sample_records - 1)
              sample_records
          in
          Alcotest.(check bool) "every whole record recovered" true
            (Journal.records rd = expect_whole);
          let s = Journal.stats rd in
          Alcotest.(check int) "torn tail counted" 1 s.Journal.r_truncated;
          Alcotest.(check bool) "lost bytes counted" true
            (s.Journal.r_bytes_lost > 0));
      (* a writer reopening the damaged journal truncates the tear and
         appends cleanly after the last whole record *)
      (match Journal.create dir with
      | Error e -> Alcotest.fail e
      | Ok w ->
          ignore (Journal.append w (Journal.Dump_marker { d_at = 9.0 }));
          Journal.close w);
      match Journal.open_ dir with
      | Error e -> Alcotest.fail e
      | Ok rd ->
          Alcotest.(check int) "tear healed, append continues"
            (List.length sample_records)
            (List.length (Journal.records rd));
          Alcotest.(check int) "no torn tail after resume" 0
            (Journal.stats rd).Journal.r_truncated)

(* ---------- OTLP encoding ---------- *)

let test_otlp_shape () =
  Alcotest.(check int) "trace id is 32 hex chars" 32
    (String.length (Obs.Otlp.trace_id_hex 7));
  Alcotest.(check int) "span id is 16 hex chars" 16
    (String.length (Obs.Otlp.span_id_hex ~trace:7 ~span:0));
  let store = Rt.create ~sample_rate:1.0 ~max_traces:4 () in
  (match Rt.begin_with_id store ~id:7 ~now:1.0 with
  | None -> Alcotest.fail "sample_rate 1 must admit"
  | Some h ->
      let p =
        Rt.add_span store h ~parent:(-1) ~kind:(Rt.Stage Rt.Frame_read)
          ~node:(-1) ~start:1.0 ~stop:1.1
      in
      ignore
        (Rt.add_span store h ~parent:p ~kind:(Rt.Stage Rt.Shard_plan) ~node:2
           ~start:1.1 ~stop:1.4);
      Rt.finish store h ~now:1.5);
  let reg = Obs.Registry.create () in
  Obs.Counter.inc ~by:3.0 (Obs.Registry.counter reg "adept_test_total");
  Obs.Gauge.set (Obs.Registry.gauge reg "adept_test_gauge") 0.5;
  let hist = Obs.Registry.histogram reg "adept_test_seconds" in
  Obs.Histogram.record_ex hist 0.25 ~trace_id:7;
  Obs.Histogram.record hist 0.01;
  let doc =
    Obs.Otlp.document
      ~resource:[ ("service.name", "adept-test") ]
      ~conn_of:(fun tr -> if tr = 7 then Some 3 else None)
      ~at:100.0
      ~exemplars:(Rt.exemplars store)
      (Obs.Registry.snapshot reg)
  in
  (match Json.of_string doc with
  | Ok _ -> ()
  | Error e -> Alcotest.fail ("OTLP document is not JSON: " ^ e));
  List.iter
    (fun needle ->
      Alcotest.(check bool) ("document has " ^ needle) true
        (contains doc needle))
    [
      "\"resourceSpans\"";
      "\"resourceMetrics\"";
      Obs.Otlp.trace_id_hex 7;
      "\"adept.conn.id\"";
      "\"adept.node\"";
      "\"service.name\"";
      "\"adept_test_total\"";
      "\"adept_test_gauge\"";
      "\"adept_test_seconds\"";
      "\"explicitBounds\"";
      "\"exemplars\"";
      "\"isMonotonic\":true";
    ];
  (* a chain head has no parentSpanId member; the child does *)
  Alcotest.(check bool) "child span carries its parent" true
    (contains doc
       ("\"parentSpanId\":\"" ^ Obs.Otlp.span_id_hex ~trace:7 ~span:0 ^ "\""));
  let doc2 =
    Obs.Otlp.document
      ~resource:[ ("service.name", "adept-test") ]
      ~conn_of:(fun tr -> if tr = 7 then Some 3 else None)
      ~at:100.0
      ~exemplars:(Rt.exemplars store)
      (Obs.Registry.snapshot reg)
  in
  Alcotest.(check string) "rendering is deterministic" doc doc2

(* ---------- replay (unit bit-identity) ---------- *)

(* Drive a live trace store and a journal side by side — exactly what
   the server does — then replay the journal and demand the very bytes
   the live exporter produced, both at a mid-run dump marker and at the
   end (reservoir eviction included: 12 finishes into 4 slots). *)
let test_replay_bit_identical () =
  with_temp_dir (fun dir ->
      let w =
        match Journal.create dir with Ok w -> w | Error e -> Alcotest.fail e
      in
      let store = Rt.create ~sample_rate:1.0 ~max_traces:4 ~max_spans:64 () in
      ignore
        (Journal.append w
           (Journal.Meta
              {
                m_at = 0.0;
                m_sample_rate = 1.0;
                m_max_traces = 4;
                m_max_spans = 64;
                m_scrape_interval = 1.0;
                m_retention = 300.0;
                m_workers = 1;
                m_shards = 1;
              }));
      let run_request i =
        let id = 100 + i in
        let issued = float_of_int i in
        (* non-monotone durations so the slowest-N reservoir evicts *)
        let dur = 0.1 +. (float_of_int ((i * 7) mod 5) /. 10.0) in
        match Rt.begin_with_id store ~id ~now:issued with
        | None -> Alcotest.fail "must sample"
        | Some h ->
            ignore
              (Journal.append w
                 (Journal.Begin_request
                    { b_at = issued; b_trace = id; b_sampled = true }));
            let p =
              Rt.add_span store h ~parent:(-1) ~kind:(Rt.Stage Rt.Frame_read)
                ~node:(-1) ~start:issued ~stop:(issued +. 0.01)
            in
            ignore
              (Rt.add_span store h ~parent:p ~kind:(Rt.Stage Rt.Shard_plan)
                 ~node:(i mod 3) ~start:(issued +. 0.01)
                 ~stop:(issued +. dur));
            let spans_n = Rt.span_count h in
            ignore spans_n;
            let tr = Rt.finish_trace store h ~now:(issued +. dur) in
            ignore
              (Journal.append w
                 (Journal.Finish
                    {
                      f_at = issued +. dur;
                      f_trace = id;
                      f_issued = issued;
                      f_conn = 1;
                      f_spans = Option.map (fun t -> t.Rt.tr_spans) tr;
                      f_dropped_spans = Rt.dropped_spans store;
                    }))
      in
      for i = 1 to 6 do run_request i done;
      let live_at_dump = Obs.Export.chrome_trace store in
      ignore (Journal.append w (Journal.Dump_marker { d_at = 6.9 }));
      for i = 7 to 12 do run_request i done;
      let live_at_end = Obs.Export.chrome_trace store in
      Journal.close w;
      let rd =
        match Journal.open_ dir with Ok r -> r | Error e -> Alcotest.fail e
      in
      let records = Journal.records rd in
      let at_dump = Obs.Replay.run ~cut:(Obs.Replay.At_dump 1) records in
      Alcotest.(check string) "dump-cut chrome trace is byte-identical"
        live_at_dump at_dump.Obs.Replay.rp_chrome;
      let at_end = Obs.Replay.run records in
      Alcotest.(check string) "end-of-journal chrome trace is byte-identical"
        live_at_end at_end.Obs.Replay.rp_chrome;
      Alcotest.(check int) "replay saw every request" 12
        at_end.Obs.Replay.rp_seen;
      Alcotest.(check int) "reservoir eviction reproduced" 4
        at_end.Obs.Replay.rp_retained;
      Alcotest.(check bool) "summary renders" true
        (String.length
           (Obs.Replay.summary ~stats:(Journal.stats rd) at_end)
        > 0))

(* ---------- recorder over the live server ---------- *)

let test_recorder_byte_identical () =
  (* the serving invariant extends to the recorder: responses are
     byte-identical with the journal and OTLP push on or off *)
  let payloads =
    List.map Proto.encode_request
      [
        { Proto.id = 1; trace = Some 201; request = plan_syn8 };
        { Proto.id = 2; trace = Some 202; request = plan_syn8 };
        { Proto.id = 3; trace = None; request = plan_syn8 };
        {
          Proto.id = 4;
          trace = Some 204;
          request =
            Proto.Replan
              {
                r_spec = syn8;
                r_dgemm = 310;
                r_demand = None;
                r_strategy = "heuristic";
                r_failed = [ 1 ];
              };
        };
      ]
  in
  let plain = with_server (fun addr -> collect_raw_replies addr payloads) in
  let recorded =
    with_temp_dir (fun dir ->
        let otlp = Filename.concat dir "otlp.json" in
        with_server
          ~extra_env:
            [
              server_obs_var ^ "=1";
              server_journal_var ^ "=" ^ Filename.concat dir "journal";
              server_otlp_var ^ "=" ^ otlp;
            ]
          (fun addr -> collect_raw_replies addr payloads))
  in
  List.iteri
    (fun i (a, b) ->
      Alcotest.(check string)
        (Printf.sprintf "reply %d byte-identical with the recorder on" i)
        a b)
    (List.combine plain recorded)

let test_replay_matches_live_server () =
  with_temp_dir (fun dir ->
      let journal_dir = Filename.concat dir "journal" in
      let otlp = Filename.concat dir "otlp.json" in
      let live_chrome = ref "" and live_otlp = ref "" in
      with_server
        ~extra_env:
          [
            server_obs_var ^ "=2";
            server_journal_var ^ "=" ^ journal_dir;
            server_otlp_var ^ "=" ^ otlp;
          ]
        (fun addr ->
          let c =
            match Client.connect_retry ~trace_base:2_000 addr with
            | Ok c -> c
            | Error e -> Alcotest.fail e
          in
          ignore (Client.call c plan_syn8);
          ignore (Client.call c plan_syn8);
          (match Client.call c Proto.Trace_dump with
          | Ok (Proto.Trace_ok { chrome }) -> live_chrome := chrome
          | _ -> Alcotest.fail "expected Trace_ok");
          (match Client.call c Proto.Otlp_dump with
          | Ok (Proto.Otlp_ok { otlp }) -> live_otlp := otlp
          | _ -> Alcotest.fail "expected Otlp_ok");
          (* per-connection aggregation is live in stats *)
          (match Client.call c Proto.Stats with
          | Ok (Proto.Stats_ok { live = Some l; _ }) -> (
              match l.Proto.connections with
              | [ conn ] ->
                  Alcotest.(check bool) "requests aggregated" true
                    (conn.Proto.conn_requests >= 4);
                  Alcotest.(check bool) "spans aggregated" true
                    (conn.Proto.conn_spans > conn.Proto.conn_requests);
                  Alcotest.(check bool) "seconds aggregated" true
                    (conn.Proto.conn_seconds > 0.0)
              | l ->
                  Alcotest.fail
                    (Printf.sprintf "expected one connection, got %d"
                       (List.length l)))
          | _ -> Alcotest.fail "expected live stats");
          Client.close c);
      (* the server has drained: replay its journal *)
      let rd =
        match Journal.open_ journal_dir with
        | Ok r -> r
        | Error e -> Alcotest.fail e
      in
      let records = Journal.records rd in
      Alcotest.(check int) "no torn tail after a clean drain" 0
        (Journal.stats rd).Journal.r_truncated;
      let at_dump = Obs.Replay.run ~cut:(Obs.Replay.At_dump 1) records in
      Alcotest.(check string)
        "replayed chrome trace is byte-identical to the live dump"
        !live_chrome at_dump.Obs.Replay.rp_chrome;
      (* the live OTLP dump's spans carry the same retained trace ids *)
      (match Json.of_string !live_otlp with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("live OTLP dump is not JSON: " ^ e));
      Alcotest.(check bool) "OTLP dump carries resource attributes" true
        (contains !live_otlp "\"adept-serve\"");
      (* the scrape-cadence OTLP file was written (teardown forces one) *)
      let pushed = read_all otlp in
      (match Json.of_string pushed with
      | Ok _ -> ()
      | Error e -> Alcotest.fail ("pushed OTLP file is not JSON: " ^ e));
      Alcotest.(check bool) "pushed document has spans and metrics" true
        (contains pushed "\"resourceSpans\""
        && contains pushed "\"resourceMetrics\"");
      (* access lines in the journal match the replay byte-verbatim
         (the full-journal replay carries every line) *)
      let full = Obs.Replay.run records in
      Alcotest.(check bool) "replayed access log has the plan lines" true
        (contains full.Obs.Replay.rp_access "\"method\":\"plan\""))

(* Regenerate the golden transcript instead of running the suite:
   SERVE_GOLDEN_OUT=/path/to/serve_session.jsonl ./test_serve.exe *)
let () =
  match Sys.getenv_opt "SERVE_GOLDEN_OUT" with
  | Some path ->
      let transcript, _ = run_session () in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc transcript);
      Printf.printf "wrote %s (%d bytes)\n" path (String.length transcript);
      exit 0
  | None -> ()

(* Likewise for the alert-timeline golden:
   SERVE_ALERTS_GOLDEN_OUT=/path/to/serve_alerts.jsonl ./test_serve.exe *)
let () =
  match Sys.getenv_opt "SERVE_ALERTS_GOLDEN_OUT" with
  | Some path ->
      let _, timeline = alert_timeline () in
      Out_channel.with_open_bin path (fun oc ->
          Out_channel.output_string oc timeline);
      Printf.printf "wrote %s (%d bytes)\n" path (String.length timeline);
      exit 0
  | None -> ()

let () =
  Alcotest.run "adept-serve"
    [
      ( "json",
        [
          Alcotest.test_case "parse/print fixpoint" `Quick test_json_fixpoint;
          Alcotest.test_case "whole floats" `Quick test_json_whole_floats;
          Alcotest.test_case "rejects malformed input" `Quick test_json_rejects;
          Alcotest.test_case "escapes" `Quick test_json_escapes;
        ] );
      ( "protocol",
        [
          Alcotest.test_case "request codec fixpoint" `Quick test_request_fixpoint;
          Alcotest.test_case "reply codec fixpoint" `Quick test_reply_fixpoint;
          Alcotest.test_case "bad requests get typed errors" `Quick test_decode_bad_requests;
          Alcotest.test_case "defaults mirror the CLI" `Quick test_decode_defaults_match_cli;
          Alcotest.test_case "trace context compatibility" `Quick test_trace_context_compat;
          Alcotest.test_case "stats without live block are unchanged" `Quick
            test_stats_live_absent_when_none;
          Alcotest.test_case "envelope fixpoint (qcheck)" `Quick
            test_envelope_qcheck_fixpoint;
          Alcotest.test_case "spec digest" `Quick test_spec_digest;
        ] );
      ( "wire",
        [
          Alcotest.test_case "roundtrip" `Quick test_wire_roundtrip;
          Alcotest.test_case "byte-by-byte feeding" `Quick test_wire_chunked;
          Alcotest.test_case "several frames per feed" `Quick test_wire_several_frames_one_feed;
          Alcotest.test_case "oversized prefix" `Quick test_wire_oversized;
        ] );
      ( "domain-pool",
        [
          Alcotest.test_case "submit/await" `Quick test_pool_submit_await;
          Alcotest.test_case "nested await helps" `Quick test_pool_nested_helping;
          Alcotest.test_case "exceptions propagate" `Quick test_pool_exception_propagates;
          Alcotest.test_case "on_resolve fires after resolution" `Quick
            test_pool_on_resolve_after_resolution;
          Alcotest.test_case "shutdown semantics" `Quick test_pool_shutdown_semantics;
        ] );
      ( "cache",
        [
          Alcotest.test_case "hit/miss and exact keys" `Quick test_cache_hit_miss;
          Alcotest.test_case "LRU eviction" `Quick test_cache_lru_eviction;
          Alcotest.test_case "replace same key" `Quick test_cache_replace_same_key;
          Alcotest.test_case "platform invalidation" `Quick test_cache_invalidate_platform;
        ] );
      ( "shard",
        [
          Alcotest.test_case "bit-identical to sequential" `Slow test_shard_equivalence;
          Alcotest.test_case "diagnostics" `Quick test_shard_diag;
        ] );
      ( "server",
        [
          Alcotest.test_case "session semantics" `Quick test_session_semantics;
          Alcotest.test_case "golden transcript" `Quick test_golden_transcript;
          Alcotest.test_case "oversized frame closes the connection" `Quick
            test_oversized_frame_closes_connection;
          Alcotest.test_case "mid-request disconnect" `Quick test_mid_request_disconnect;
          Alcotest.test_case "use_cache:false bypasses the cache" `Quick
            test_client_call_no_cache;
          Alcotest.test_case "address parsing" `Quick test_address_parsing;
        ] );
      ( "observability",
        [
          Alcotest.test_case "clock sources and clamping" `Quick test_clock_sources;
          Alcotest.test_case "deterministic head sampling" `Quick
            test_trace_sampling_deterministic;
          Alcotest.test_case "worker stage profiling" `Quick test_prof_samples;
          Alcotest.test_case "cache eviction age and hit ratio" `Quick
            test_cache_eviction_age;
          Alcotest.test_case "domain busy accounting" `Quick test_pool_busy_seconds;
          Alcotest.test_case "runtime gc pause metrics" `Quick test_runtime_metrics;
          Alcotest.test_case "trace dump requires observability" `Quick
            test_trace_dump_requires_obs;
          Alcotest.test_case "replies byte-identical with tracing on" `Quick
            test_tracing_byte_identical;
          Alcotest.test_case "trace dump carries the stage spans" `Quick
            test_trace_dump_spans;
          Alcotest.test_case "access log" `Quick test_access_log;
          Alcotest.test_case "prometheus snapshot" `Quick test_prom_snapshot;
          Alcotest.test_case "alert timeline (golden)" `Quick
            test_alert_timeline_golden;
        ] );
      ( "flight-recorder",
        [
          Alcotest.test_case "clock edges" `Quick test_clock_edges;
          Alcotest.test_case "journal codec and disk roundtrip" `Quick
            test_journal_roundtrip;
          Alcotest.test_case "segment rotation and pruning" `Quick
            test_journal_rotation;
          Alcotest.test_case "torn tail recovery" `Quick test_journal_torn_tail;
          Alcotest.test_case "otlp document shape" `Quick test_otlp_shape;
          Alcotest.test_case "replay is bit-identical (unit)" `Quick
            test_replay_bit_identical;
          Alcotest.test_case "replies byte-identical with the recorder on"
            `Quick test_recorder_byte_identical;
          Alcotest.test_case "replay matches the live server" `Quick
            test_replay_matches_live_server;
        ] );
    ]
