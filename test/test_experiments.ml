(* End-to-end tests of every paper reproduction, at Quick fidelity.
   These assert the paper's qualitative claims, not absolute numbers. *)

module Common = Adept_experiments.Common
module Registry = Adept_experiments.Registry

let ctx = Common.quick_context

let test_table3_exact_reconstruction () =
  let r = Adept_experiments.Table3_exp.run ctx in
  Alcotest.(check bool) "max relative error < 1e-6" true
    (r.Adept_experiments.Table3_exp.max_error < 1e-6);
  Alcotest.(check bool) "correlation near 1" true
    (r.Adept_experiments.Table3_exp.measured.Adept_calibration.Table3.wrep_correlation
     > 0.99)

let test_fig2_3_second_server_hurts () =
  let r = Adept_experiments.Fig2_3.run ctx in
  Alcotest.(check bool) "predicted: hurts" true
    r.Adept_experiments.Fig2_3.second_server_hurts_predicted;
  Alcotest.(check bool) "measured: hurts" true
    r.Adept_experiments.Fig2_3.second_server_hurts_measured;
  (* prediction accuracy on the peaks *)
  let close a b = Float.abs (a -. b) /. b < 0.05 in
  Alcotest.(check bool) "1 SeD within 5%" true
    (close r.Adept_experiments.Fig2_3.measured_one r.Adept_experiments.Fig2_3.predicted_one);
  Alcotest.(check bool) "2 SeDs within 5%" true
    (close r.Adept_experiments.Fig2_3.measured_two r.Adept_experiments.Fig2_3.predicted_two)

let test_fig4_5_second_server_doubles () =
  let r = Adept_experiments.Fig4_5.run ctx in
  Alcotest.(check bool) "predicted speedup ~2" true
    (r.Adept_experiments.Fig4_5.speedup_predicted > 1.9
    && r.Adept_experiments.Fig4_5.speedup_predicted < 2.1);
  Alcotest.(check bool) "measured speedup ~2" true
    (r.Adept_experiments.Fig4_5.speedup_measured > 1.8
    && r.Adept_experiments.Fig4_5.speedup_measured < 2.2)

let test_table4_quality () =
  let r = Adept_experiments.Table4.run ctx in
  Alcotest.(check int) "four rows" 4 (List.length r.Adept_experiments.Table4.rows);
  List.iter
    (fun (row : Adept_experiments.Table4.row) ->
      Alcotest.(check bool)
        (Printf.sprintf "dgemm %d >= paper's 89%%" row.Adept_experiments.Table4.dgemm)
        true
        (row.Adept_experiments.Table4.heur_percent >= 0.89))
    r.Adept_experiments.Table4.rows;
  (* the two regime extremes match the paper's degrees exactly *)
  let row i = List.nth r.Adept_experiments.Table4.rows i in
  Alcotest.(check int) "dgemm 10 degree 1" 1 (row 0).Adept_experiments.Table4.heur_degree;
  Alcotest.(check int) "dgemm 1000 degree 20" 20
    (row 3).Adept_experiments.Table4.heur_degree

let test_fig6_automatic_wins () =
  let r = Adept_experiments.Fig6.run ctx in
  Alcotest.(check bool) "automatic wins" true r.Adept_experiments.Fig6.automatic_wins;
  Alcotest.(check bool) "star is agent-limited (worst model rho)" true
    (r.Adept_experiments.Fig6.star.Adept_experiments.Fig6.predicted
    < r.Adept_experiments.Fig6.automatic.Adept_experiments.Fig6.predicted)

let test_fig7_star_generated_and_wins () =
  let r = Adept_experiments.Fig7.run ctx in
  Alcotest.(check bool) "automatic is a star" true
    r.Adept_experiments.Fig7.automatic_is_star;
  Alcotest.(check bool) "automatic >= balanced" true r.Adept_experiments.Fig7.automatic_wins

let test_ablation_selection () =
  let rows = Adept_experiments.Ablation.run_selection ctx in
  Alcotest.(check int) "three policies" 3 (List.length rows);
  let get name =
    (List.find (fun (r : Adept_experiments.Ablation.selection_row) ->
         r.Adept_experiments.Ablation.policy = name) rows)
      .Adept_experiments.Ablation.throughput
  in
  Alcotest.(check bool) "best-prediction >= random" true
    (get "best-prediction" >= get "random" *. 0.95)

let test_ablation_bandwidth_shape () =
  let rows = Adept_experiments.Ablation.run_bandwidth ctx in
  match rows with
  | [ low; high ] ->
      Alcotest.(check bool) "more bandwidth, more throughput" true
        (high.Adept_experiments.Ablation.rho > low.Adept_experiments.Ablation.rho);
      Alcotest.(check bool) "cheap links flatten or widen the tree" true
        (high.Adept_experiments.Ablation.max_degree
        >= low.Adept_experiments.Ablation.max_degree)
  | _ -> Alcotest.fail "expected two bandwidth points in quick mode"

let test_ablation_demand_monotone () =
  let rows = Adept_experiments.Ablation.run_demand ctx in
  let met = List.filter (fun (r : Adept_experiments.Ablation.demand_row) ->
      r.Adept_experiments.Ablation.met) rows in
  Alcotest.(check bool) "some demands met" true (List.length met >= 3);
  (* resources grow with the met demand *)
  let rec monotone = function
    | (a : Adept_experiments.Ablation.demand_row)
      :: (b : Adept_experiments.Ablation.demand_row) :: rest ->
        a.Adept_experiments.Ablation.nodes_used <= b.Adept_experiments.Ablation.nodes_used
        && monotone (b :: rest)
    | _ -> true
  in
  Alcotest.(check bool) "nodes monotone in demand" true (monotone met)

let test_ablation_improver () =
  let rows = Adept_experiments.Ablation.run_improver ctx in
  Alcotest.(check int) "three starts" 3 (List.length rows);
  List.iter
    (fun (r : Adept_experiments.Ablation.improver_row) ->
      Alcotest.(check bool) (r.Adept_experiments.Ablation.start ^ ": improves or holds")
        true
        (r.Adept_experiments.Ablation.improved_rho
        >= r.Adept_experiments.Ablation.start_rho -. 1e-9);
      Alcotest.(check bool)
        (r.Adept_experiments.Ablation.start ^ ": heuristic at least as good")
        true
        (r.Adept_experiments.Ablation.heuristic_rho
        >= r.Adept_experiments.Ablation.improved_rho -. 1e-9))
    rows;
  (* the paper's motivating claim: from a degenerate start, local climbing
     stalls below the from-scratch plan *)
  let degenerate =
    List.find
      (fun (r : Adept_experiments.Ablation.improver_row) ->
        r.Adept_experiments.Ablation.start = "1 agent + 1 server")
      rows
  in
  Alcotest.(check bool) "local optimum below heuristic" true
    (degenerate.Adept_experiments.Ablation.improved_rho
    < degenerate.Adept_experiments.Ablation.heuristic_rho)

let test_ablation_wan_crossover () =
  let rows = Adept_experiments.Ablation.run_wan ctx in
  match rows with
  | [ (_, slow_arrangement, _); (_, fast_arrangement, fast_rho) ] ->
      Alcotest.(check bool) "slow WAN stays single-site" true
        (String.length slow_arrangement >= 6 && String.sub slow_arrangement 0 6 = "single");
      Alcotest.(check bool) "fast WAN federates" true
        (String.length fast_arrangement >= 9
        && String.sub fast_arrangement 0 9 = "federated");
      Alcotest.(check bool) "positive rho" true (fast_rho > 0.0)
  | _ -> Alcotest.fail "expected two WAN points in quick mode"

let test_ablation_mix_arithmetic_wins () =
  let rows = Adept_experiments.Ablation.run_mix ctx in
  let get basis =
    List.find
      (fun (r : Adept_experiments.Ablation.mix_row) ->
        r.Adept_experiments.Ablation.planner_basis = basis)
      rows
  in
  let arith = get "arithmetic mean" and harm = get "harmonic mean" in
  Alcotest.(check bool) "harmonic under-provisions" true
    (harm.Adept_experiments.Ablation.plan_nodes
    < arith.Adept_experiments.Ablation.plan_nodes);
  Alcotest.(check bool) "arithmetic plan measures higher" true
    (arith.Adept_experiments.Ablation.measured
    > harm.Adept_experiments.Ablation.measured)

let test_ablation_monitoring_staleness () =
  let rows = Adept_experiments.Ablation.run_monitoring ctx in
  let value period =
    (List.find
       (fun (r : Adept_experiments.Ablation.monitoring_row) ->
         r.Adept_experiments.Ablation.period = period)
       rows)
      .Adept_experiments.Ablation.monitored_throughput
  in
  let fresh = value None in
  let fast = value (Some 0.01) in
  let slow = value (Some 1.0) in
  Alcotest.(check bool) "fast monitoring close to fresh" true (fast > 0.8 *. fresh);
  Alcotest.(check bool) "second-scale staleness collapses" true (slow < 0.5 *. fresh)

let test_self_heal_policies () =
  (* the headline claim of the self-heal extension: under real churn the
     hysteresis policy beats both never replanning and guard-free
     replanning; without churn, any healing beats monitoring alone *)
  let module SH = Adept_experiments.Self_heal in
  let module C = Adept_sim.Controller in
  let r = SH.run ctx in
  let get rate policy =
    List.find (fun (p : SH.point) -> p.SH.rate = rate && p.SH.policy = policy) r.SH.points
  in
  let off0 = get 0.0 C.Off in
  Alcotest.(check int) "off never replans" 0 off0.SH.replans;
  Alcotest.(check bool) "healing the orphan beats monitoring alone" true
    ((get 0.0 C.Eager).SH.throughput > off0.SH.throughput
    && (get 0.0 C.Hysteresis).SH.throughput > off0.SH.throughput);
  let churn = 0.5 in
  let off = get churn C.Off in
  let eager = get churn C.Eager in
  let hyst = get churn C.Hysteresis in
  Alcotest.(check bool)
    (Printf.sprintf "hysteresis (%.1f) beats off (%.1f) under churn"
       hyst.SH.throughput off.SH.throughput)
    true
    (hyst.SH.throughput > off.SH.throughput);
  Alcotest.(check bool)
    (Printf.sprintf "hysteresis (%.1f) beats eager (%.1f) under churn"
       hyst.SH.throughput eager.SH.throughput)
    true
    (hyst.SH.throughput > eager.SH.throughput);
  Alcotest.(check bool) "hysteresis enacts fewer replans than eager" true
    (hyst.SH.replans <= eager.SH.replans);
  Alcotest.(check bool) "hysteresis loses fewer requests to migration" true
    (hyst.SH.migration_lost <= eager.SH.migration_lost)

let test_registry_complete () =
  Alcotest.(check int) "sixteen experiments" 16 (List.length Registry.all);
  List.iter
    (fun id ->
      Alcotest.(check bool) ("find " ^ id) true (Registry.find id <> None))
    Registry.ids;
  Alcotest.(check bool) "unknown id" true (Registry.find "nope" = None)

let test_reports_render () =
  (* every report renders non-trivially and mentions its paper reference *)
  List.iter
    (fun (e : Registry.experiment) ->
      if e.Registry.id <> "fig6" && e.Registry.id <> "fig7" then begin
        let report = e.Registry.run ctx in
        let text = Common.render report in
        Alcotest.(check bool) (e.Registry.id ^ " renders") true (String.length text > 100);
        Alcotest.(check bool) (e.Registry.id ^ " has id header") true
          (Astring.String.is_infix ~affix:e.Registry.id text)
      end)
    Registry.all

let test_series_written () =
  let dir = Filename.temp_file "adept_series" "" in
  Sys.remove dir;
  Sys.mkdir dir 0o755;
  Fun.protect
    ~finally:(fun () ->
      Array.iter (fun f -> Sys.remove (Filename.concat dir f)) (Sys.readdir dir);
      Sys.rmdir dir)
    (fun () ->
      let ctx = { ctx with Common.out_dir = Some dir } in
      let r = Adept_experiments.Fig2_3.run ctx in
      let report = Adept_experiments.Fig2_3.report ctx r in
      Common.write_series ctx report;
      Alcotest.(check bool) "csv written" true
        (Array.exists
           (fun f -> Filename.check_suffix f ".csv")
           (Sys.readdir dir)))

let () =
  Alcotest.run "experiments"
    [
      ( "paper-claims",
        [
          Alcotest.test_case "table3 reconstruction" `Quick test_table3_exact_reconstruction;
          Alcotest.test_case "fig2-3 second server hurts" `Quick
            test_fig2_3_second_server_hurts;
          Alcotest.test_case "fig4-5 second server doubles" `Quick
            test_fig4_5_second_server_doubles;
          Alcotest.test_case "table4 quality" `Quick test_table4_quality;
          Alcotest.test_case "fig6 automatic wins" `Slow test_fig6_automatic_wins;
          Alcotest.test_case "fig7 star wins" `Slow test_fig7_star_generated_and_wins;
        ] );
      ( "extensions",
        [
          Alcotest.test_case "selection ablation" `Quick test_ablation_selection;
          Alcotest.test_case "bandwidth ablation" `Quick test_ablation_bandwidth_shape;
          Alcotest.test_case "demand ablation" `Quick test_ablation_demand_monotone;
          Alcotest.test_case "improver ablation" `Quick test_ablation_improver;
          Alcotest.test_case "wan ablation" `Quick test_ablation_wan_crossover;
          Alcotest.test_case "mix ablation" `Quick test_ablation_mix_arithmetic_wins;
          Alcotest.test_case "monitoring staleness" `Quick
            test_ablation_monitoring_staleness;
          Alcotest.test_case "self-heal policies" `Slow test_self_heal_policies;
        ] );
      ( "harness",
        [
          Alcotest.test_case "registry" `Quick test_registry_complete;
          Alcotest.test_case "reports render" `Slow test_reports_render;
          Alcotest.test_case "series written" `Quick test_series_written;
        ] );
    ]
